//! Simulation requests: what to simulate ([`KernelSpec`]), on which memory
//! system ([`MemoryConfig`]) and with which simulator ([`Backend`]).

use crate::sampling::SamplingOptions;
use cache_model::MemoryConfig;
use polybench::{Dataset, Kernel};
use scop::{parse_scop, ParamBindings, ParametricScop, Scop};
use serde::{Deserialize, Serialize, Value};
use warping::WarpingOptions;

/// The kernel a request simulates.
#[derive(Clone, PartialEq, Debug)]
pub enum KernelSpec {
    /// A mini-C source text, elaborated with the default options (array
    /// accesses only).
    Source {
        /// Display name used in reports.
        name: String,
        /// The mini-C source.
        code: String,
    },
    /// A PolyBench kernel at a dataset size.
    PolyBench {
        /// The kernel.
        kernel: Kernel,
        /// The dataset size.
        dataset: Dataset,
    },
    /// An already-elaborated SCoP (skips parsing; useful when the same
    /// kernel is simulated under many configurations, and for callers that
    /// build SCoPs programmatically).  In-process only: serializing a
    /// prebuilt spec records just its name, and such JSON is rejected on
    /// deserialization — use [`KernelSpec::Source`] or
    /// [`KernelSpec::PolyBench`] for requests that travel over the wire.
    Prebuilt {
        /// Display name used in reports.
        name: String,
        /// The SCoP.
        scop: Scop,
    },
    /// A parametric kernel family (mini-C source with `param` declarations)
    /// plus the bindings that select one concrete instance.  The template
    /// is parsed once per process ([`ParametricScop::cached`]); building an
    /// instance is substitution + elaboration only.
    Parametric {
        /// Display name used in reports.
        name: String,
        /// The parametric mini-C source.
        code: String,
        /// Parameter bindings, sorted by name (deduplicated; the
        /// constructor normalises).
        bindings: Vec<(String, i64)>,
    },
}

impl KernelSpec {
    /// A request kernel from mini-C source.
    pub fn source(name: impl Into<String>, code: impl Into<String>) -> Self {
        KernelSpec::Source {
            name: name.into(),
            code: code.into(),
        }
    }

    /// A request kernel naming a PolyBench benchmark.
    pub fn polybench(kernel: Kernel, dataset: Dataset) -> Self {
        KernelSpec::PolyBench { kernel, dataset }
    }

    /// A request kernel wrapping an elaborated SCoP.
    pub fn prebuilt(name: impl Into<String>, scop: Scop) -> Self {
        KernelSpec::Prebuilt {
            name: name.into(),
            scop,
        }
    }

    /// A request kernel selecting one instance of a parametric family.
    /// Bindings are normalised (sorted by name, later duplicates win) so
    /// equal binding sets compare and hash equal regardless of input order.
    pub fn parametric<I, S>(name: impl Into<String>, code: impl Into<String>, bindings: I) -> Self
    where
        I: IntoIterator<Item = (S, i64)>,
        S: Into<String>,
    {
        let normalised: std::collections::BTreeMap<String, i64> = bindings
            .into_iter()
            .map(|(name, value)| (name.into(), value))
            .collect();
        KernelSpec::Parametric {
            name: name.into(),
            code: code.into(),
            bindings: normalised.into_iter().collect(),
        }
    }

    /// The display name used in reports.
    pub fn name(&self) -> String {
        match self {
            KernelSpec::Source { name, .. }
            | KernelSpec::Prebuilt { name, .. }
            | KernelSpec::Parametric { name, .. } => name.clone(),
            KernelSpec::PolyBench { kernel, dataset } => {
                format!("{}@{}", kernel.name(), dataset.name())
            }
        }
    }

    /// The bindings of a parametric spec as [`ParamBindings`] (empty for
    /// other variants).
    pub fn param_bindings(&self) -> ParamBindings {
        match self {
            KernelSpec::Parametric { bindings, .. } => {
                ParamBindings::from_pairs(bindings.iter().cloned())
            }
            _ => ParamBindings::new(),
        }
    }

    /// Elaborates the kernel into a SCoP.
    ///
    /// # Errors
    ///
    /// Returns the parse/elaboration error message for invalid sources.
    pub fn build(&self) -> Result<Scop, String> {
        match self {
            KernelSpec::Source { code, .. } => parse_scop(code),
            KernelSpec::PolyBench { kernel, dataset } => kernel.build(*dataset),
            KernelSpec::Prebuilt { scop, .. } => Ok(scop.clone()),
            KernelSpec::Parametric { code, .. } => {
                let template = ParametricScop::cached(code).map_err(|e| e.to_string())?;
                template
                    .instantiate(&self.param_bindings())
                    .map_err(|e| e.to_string())
            }
        }
    }
}

/// The simulator or model answering a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Per-access simulation (Algorithm 1 of the paper); exact for any
    /// memory depth.
    Classic,
    /// Warping symbolic simulation (Algorithm 2); exact for any memory
    /// depth.
    Warping(WarpingOptions),
    /// HayStack-style stack-distance model of a fully-associative LRU
    /// cache; single-level memory systems.
    Haystack,
    /// PolyCache-style per-set model of a two-level set-associative LRU
    /// hierarchy.
    PolyCache,
    /// Dinero-IV-style trace simulation: materialise the full access trace,
    /// then replay it; exact for any memory depth.
    Trace,
    /// Interval sampling: simulates only representative intervals of the
    /// outer iteration space and extrapolates per-level counts, reporting
    /// a per-level error bound in
    /// [`SimReport::approx`](crate::SimReport::approx).  Approximate (fast
    /// path for kernels warping cannot accelerate); exact at a sampling
    /// rate of 1.0.
    Sampled(SamplingOptions),
}

impl Backend {
    /// The paper's five evaluated backends, warping with default options
    /// (in the order of the paper's evaluation).  The approximate
    /// [`Backend::Sampled`] is deliberately not part of this list.
    pub const ALL: [Backend; 5] = [
        Backend::Classic,
        Backend::Warping(WarpingOptions::DEFAULT),
        Backend::Haystack,
        Backend::PolyCache,
        Backend::Trace,
    ];

    /// The warping backend with default tuning options.
    pub fn warping() -> Self {
        Backend::Warping(WarpingOptions::default())
    }

    /// The sampling backend with default tuning options (~10% rate, one
    /// warm-up interval per live level).
    pub fn sampled() -> Self {
        Backend::Sampled(SamplingOptions::default())
    }

    /// A short stable identifier, usable in JSON and on the command line.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Classic => "classic",
            Backend::Warping(_) => "warping",
            Backend::Haystack => "haystack",
            Backend::PolyCache => "polycache",
            Backend::Trace => "trace",
            Backend::Sampled(_) => "sampled",
        }
    }

    /// Parses a backend from its [`label`](Backend::label) (warping and
    /// sampled get their default options).
    pub fn by_name(name: &str) -> Option<Backend> {
        match name {
            "classic" => Some(Backend::Classic),
            "warping" => Some(Backend::warping()),
            "haystack" => Some(Backend::Haystack),
            "polycache" => Some(Backend::PolyCache),
            "trace" => Some(Backend::Trace),
            "sampled" => Some(Backend::sampled()),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One unit of work for the [`Engine`](crate::Engine): a kernel × memory
/// configuration × backend triple.
#[derive(Clone, PartialEq, Debug)]
pub struct SimRequest {
    /// What to simulate.
    pub kernel: KernelSpec,
    /// The memory system to simulate it on.
    pub memory: MemoryConfig,
    /// The simulator to use.
    pub backend: Backend,
}

impl SimRequest {
    /// A request from any memory description convertible to
    /// [`MemoryConfig`] (e.g. `CacheConfig` or `HierarchyConfig`).
    pub fn new(kernel: KernelSpec, memory: impl Into<MemoryConfig>, backend: Backend) -> Self {
        SimRequest {
            kernel,
            memory: memory.into(),
            backend,
        }
    }

    /// The full kernel × memory × backend grid, in row-major order
    /// (kernels outermost) — the shape
    /// [`Engine::run_batch`](crate::Engine::run_batch) fans out across
    /// threads.
    pub fn grid(
        kernels: &[KernelSpec],
        memories: &[MemoryConfig],
        backends: &[Backend],
    ) -> Vec<SimRequest> {
        let mut requests = Vec::with_capacity(kernels.len() * memories.len() * backends.len());
        for kernel in kernels {
            for memory in memories {
                for backend in backends {
                    requests.push(SimRequest {
                        kernel: kernel.clone(),
                        memory: memory.clone(),
                        backend: *backend,
                    });
                }
            }
        }
        requests
    }
}

// ---------------------------------------------------------------------------
// JSON (de)serialization, so request grids can be served over the wire.

impl Serialize for KernelSpec {
    fn serialize_value(&self) -> Value {
        match self {
            KernelSpec::Source { name, code } => Value::Object(vec![
                ("type".to_string(), Value::Str("source".to_string())),
                ("name".to_string(), Value::Str(name.clone())),
                ("code".to_string(), Value::Str(code.clone())),
            ]),
            KernelSpec::PolyBench { kernel, dataset } => Value::Object(vec![
                ("type".to_string(), Value::Str("polybench".to_string())),
                ("kernel".to_string(), Value::Str(kernel.name().to_string())),
                (
                    "dataset".to_string(),
                    Value::Str(dataset.name().to_string()),
                ),
            ]),
            // A prebuilt SCoP is an in-process optimisation; over the wire
            // only its name travels.
            KernelSpec::Prebuilt { name, .. } => Value::Object(vec![
                ("type".to_string(), Value::Str("prebuilt".to_string())),
                ("name".to_string(), Value::Str(name.clone())),
            ]),
            KernelSpec::Parametric {
                name,
                code,
                bindings,
            } => Value::Object(vec![
                ("type".to_string(), Value::Str("parametric".to_string())),
                ("name".to_string(), Value::Str(name.clone())),
                ("code".to_string(), Value::Str(code.clone())),
                (
                    "bindings".to_string(),
                    Value::Object(
                        bindings
                            .iter()
                            .map(|(param, value)| (param.clone(), Value::Int(*value)))
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

impl Deserialize for KernelSpec {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        let kind = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or("kernel spec is missing `type`")?;
        match kind {
            "source" => {
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("source kernel spec is missing `name`")?;
                let code = value
                    .get("code")
                    .and_then(Value::as_str)
                    .ok_or("source kernel spec is missing `code`")?;
                Ok(KernelSpec::source(name, code))
            }
            "polybench" => {
                let kernel = value
                    .get("kernel")
                    .and_then(Value::as_str)
                    .ok_or("polybench kernel spec is missing `kernel`")?;
                let kernel = Kernel::by_name(kernel)
                    .ok_or_else(|| format!("unknown PolyBench kernel `{kernel}`"))?;
                let dataset = value
                    .get("dataset")
                    .and_then(Value::as_str)
                    .ok_or("polybench kernel spec is missing `dataset`")?;
                let dataset = dataset_by_name(dataset)
                    .ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
                Ok(KernelSpec::polybench(kernel, dataset))
            }
            "parametric" => {
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("parametric kernel spec is missing `name`")?;
                let code = value
                    .get("code")
                    .and_then(Value::as_str)
                    .ok_or("parametric kernel spec is missing `code`")?;
                let bindings = match value.get("bindings") {
                    Some(Value::Object(entries)) => entries
                        .iter()
                        .map(|(param, v)| {
                            let bound = v.as_i64().ok_or_else(|| {
                                format!("binding for parameter `{param}` must be an integer")
                            })?;
                            Ok((param.clone(), bound))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    Some(other) => {
                        return Err(format!(
                            "parametric kernel spec `bindings` must be an object, got {other:?}"
                        ))
                    }
                    None => Vec::new(),
                };
                Ok(KernelSpec::parametric(name, code, bindings))
            }
            "prebuilt" => Err(
                "prebuilt kernel specs are an in-process optimisation and cannot travel over \
                 the wire (only their name is serialized); send a `source` or `polybench` spec \
                 instead"
                    .to_string(),
            ),
            other => Err(format!("cannot deserialize kernel spec of type `{other}`")),
        }
    }
}

/// Parses a dataset name (case-insensitive, PolyBench spelling).
pub fn dataset_by_name(name: &str) -> Option<Dataset> {
    match name.to_ascii_lowercase().as_str() {
        "mini" => Some(Dataset::Mini),
        "small" => Some(Dataset::Small),
        "medium" => Some(Dataset::Medium),
        "large" => Some(Dataset::Large),
        "extralarge" | "xl" => Some(Dataset::ExtraLarge),
        _ => None,
    }
}

impl Serialize for Backend {
    fn serialize_value(&self) -> Value {
        // Backends at their default options stay bare name strings (the
        // historical wire form); only non-default sampling options need
        // the object form.
        if let Backend::Sampled(options) = self {
            if *options != SamplingOptions::DEFAULT {
                return Value::Object(vec![
                    ("name".to_string(), Value::Str(self.label().to_string())),
                    (
                        "rate_ppm".to_string(),
                        Value::Int(i64::from(options.rate_ppm)),
                    ),
                    ("warmup".to_string(), Value::Int(i64::from(options.warmup))),
                    (
                        "max_error".to_string(),
                        Value::Int(options.max_error.min(i64::MAX as u64) as i64),
                    ),
                ]);
            }
        }
        Value::Str(self.label().to_string())
    }
}

impl Deserialize for Backend {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        if let Some(name) = value.as_str() {
            return Backend::by_name(name).ok_or_else(|| format!("unknown backend `{name}`"));
        }
        // Object form: `{"name":"sampled","rate_ppm":…,"warmup":…,
        // "max_error":…}` — every field beyond `name` optional, defaulted.
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("expected a backend name or object, got {value:?}"))?;
        let backend = Backend::by_name(name).ok_or_else(|| format!("unknown backend `{name}`"))?;
        let Backend::Sampled(mut options) = backend else {
            return Ok(backend);
        };
        if let Some(rate) = value.get("rate_ppm") {
            let rate = rate
                .as_i64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| "backend `rate_ppm` must be a non-negative integer".to_string())?;
            options.rate_ppm = rate;
        }
        if let Some(warmup) = value.get("warmup") {
            let warmup = warmup
                .as_i64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| "backend `warmup` must be a non-negative integer".to_string())?;
            options.warmup = warmup;
        }
        if let Some(max_error) = value.get("max_error") {
            let max_error = max_error
                .as_i64()
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| "backend `max_error` must be a non-negative integer".to_string())?;
            options.max_error = max_error;
        }
        options.validate()?;
        Ok(Backend::Sampled(options))
    }
}

impl Serialize for SimRequest {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("kernel".to_string(), self.kernel.serialize_value()),
            ("memory".to_string(), self.memory.serialize_value()),
            ("backend".to_string(), self.backend.serialize_value()),
        ])
    }
}

impl Deserialize for SimRequest {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        let kernel = KernelSpec::deserialize_value(
            value.get("kernel").ok_or("request is missing `kernel`")?,
        )?;
        let memory = MemoryConfig::deserialize_value(
            value.get("memory").ok_or("request is missing `memory`")?,
        )?;
        let backend = Backend::deserialize_value(
            value.get("backend").ok_or("request is missing `backend`")?,
        )?;
        Ok(SimRequest {
            kernel,
            memory,
            backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};

    #[test]
    fn parametric_specs_roundtrip_over_the_wire() {
        let request = SimRequest::new(
            KernelSpec::parametric(
                "tiled",
                "param N, T;\ndouble A[N];\nfor (i = 0; i < N; i += T) A[i] = A[i];",
                [("T", 8), ("N", 64)],
            ),
            MemoryConfig::from(CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru)),
            Backend::warping(),
        );
        let text = serde_json::to_string(&request).expect("requests serialize");
        assert!(text.contains("\"parametric\""), "wire form: {text}");
        let back: SimRequest = serde_json::from_str(&text).expect("requests deserialize");
        assert_eq!(back.kernel.name(), "tiled");
        match &back.kernel {
            KernelSpec::Parametric { bindings, .. } => {
                // Bindings are normalised to name order regardless of the
                // order they were supplied in.
                assert_eq!(bindings, &vec![("N".to_string(), 64), ("T".to_string(), 8)]);
            }
            other => panic!("roundtripped into {other:?}"),
        }
        assert_eq!(request.canonical_hash(), back.canonical_hash());
    }

    #[test]
    fn backends_with_default_options_stay_bare_strings() {
        for backend in Backend::ALL.iter().chain([Backend::sampled()].iter()) {
            let value = backend.serialize_value();
            assert_eq!(value.as_str(), Some(backend.label()), "{backend:?}");
            let back = Backend::deserialize_value(&value).expect("bare names deserialize");
            assert_eq!(&back, backend);
        }
    }

    #[test]
    fn sampled_backend_roundtrips_max_error_in_object_form() {
        let backend = Backend::Sampled(
            SamplingOptions::from_rate(0.05)
                .expect("0.05 is a valid rate")
                .with_max_error(1_000),
        );
        let value = backend.serialize_value();
        assert!(
            value.as_str().is_none(),
            "non-default options need the object form"
        );
        let back = Backend::deserialize_value(&value).expect("object form deserializes");
        assert_eq!(back, backend);
        // Partial objects default the missing fields.
        let text = r#"{"name":"sampled","max_error":42}"#;
        let partial = Backend::deserialize_value(
            &serde_json::from_str::<serde::Value>(text).expect("valid JSON"),
        )
        .expect("partial object deserializes");
        assert_eq!(
            partial,
            Backend::Sampled(SamplingOptions::DEFAULT.with_max_error(42))
        );
        // Invalid rates are rejected at the wire boundary.
        let text = r#"{"name":"sampled","rate_ppm":0}"#;
        Backend::deserialize_value(
            &serde_json::from_str::<serde::Value>(text).expect("valid JSON"),
        )
        .expect_err("zero rate must be rejected");
    }

    #[test]
    fn parametric_bindings_must_be_integers() {
        let text = r#"{"type":"parametric","name":"k","code":"param N; double A[N]; for (i = 0; i < N; i++) A[i] = A[i];","bindings":{"N":"big"}}"#;
        let err = KernelSpec::deserialize_value(
            &serde_json::from_str::<serde::Value>(text).expect("valid JSON"),
        )
        .expect_err("string bindings must be rejected");
        assert!(err.contains("must be an integer"), "got: {err}");
    }

    #[test]
    fn parametric_build_surfaces_binding_errors() {
        let spec = KernelSpec::parametric(
            "k",
            "param N;\ndouble A[N];\nfor (i = 0; i < N; i++) A[i] = A[i];",
            [] as [(&str, i64); 0],
        );
        let err = spec.build().expect_err("unbound parameter must fail");
        assert!(err.contains("never bound"), "got: {err}");
    }
}
