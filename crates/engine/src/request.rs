//! Simulation requests: what to simulate ([`KernelSpec`]), on which memory
//! system ([`MemoryConfig`]) and with which simulator ([`Backend`]).

use cache_model::MemoryConfig;
use polybench::{Dataset, Kernel};
use scop::{parse_scop, Scop};
use serde::{Deserialize, Serialize, Value};
use warping::WarpingOptions;

/// The kernel a request simulates.
#[derive(Clone, PartialEq, Debug)]
pub enum KernelSpec {
    /// A mini-C source text, elaborated with the default options (array
    /// accesses only).
    Source {
        /// Display name used in reports.
        name: String,
        /// The mini-C source.
        code: String,
    },
    /// A PolyBench kernel at a dataset size.
    PolyBench {
        /// The kernel.
        kernel: Kernel,
        /// The dataset size.
        dataset: Dataset,
    },
    /// An already-elaborated SCoP (skips parsing; useful when the same
    /// kernel is simulated under many configurations, and for callers that
    /// build SCoPs programmatically).  In-process only: serializing a
    /// prebuilt spec records just its name, and such JSON is rejected on
    /// deserialization — use [`KernelSpec::Source`] or
    /// [`KernelSpec::PolyBench`] for requests that travel over the wire.
    Prebuilt {
        /// Display name used in reports.
        name: String,
        /// The SCoP.
        scop: Scop,
    },
}

impl KernelSpec {
    /// A request kernel from mini-C source.
    pub fn source(name: impl Into<String>, code: impl Into<String>) -> Self {
        KernelSpec::Source {
            name: name.into(),
            code: code.into(),
        }
    }

    /// A request kernel naming a PolyBench benchmark.
    pub fn polybench(kernel: Kernel, dataset: Dataset) -> Self {
        KernelSpec::PolyBench { kernel, dataset }
    }

    /// A request kernel wrapping an elaborated SCoP.
    pub fn prebuilt(name: impl Into<String>, scop: Scop) -> Self {
        KernelSpec::Prebuilt {
            name: name.into(),
            scop,
        }
    }

    /// The display name used in reports.
    pub fn name(&self) -> String {
        match self {
            KernelSpec::Source { name, .. } | KernelSpec::Prebuilt { name, .. } => name.clone(),
            KernelSpec::PolyBench { kernel, dataset } => {
                format!("{}@{}", kernel.name(), dataset.name())
            }
        }
    }

    /// Elaborates the kernel into a SCoP.
    ///
    /// # Errors
    ///
    /// Returns the parse/elaboration error message for invalid sources.
    pub fn build(&self) -> Result<Scop, String> {
        match self {
            KernelSpec::Source { code, .. } => parse_scop(code),
            KernelSpec::PolyBench { kernel, dataset } => kernel.build(*dataset),
            KernelSpec::Prebuilt { scop, .. } => Ok(scop.clone()),
        }
    }
}

/// The simulator or model answering a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Per-access simulation (Algorithm 1 of the paper); exact for any
    /// memory depth.
    Classic,
    /// Warping symbolic simulation (Algorithm 2); exact for any memory
    /// depth.
    Warping(WarpingOptions),
    /// HayStack-style stack-distance model of a fully-associative LRU
    /// cache; single-level memory systems.
    Haystack,
    /// PolyCache-style per-set model of a two-level set-associative LRU
    /// hierarchy.
    PolyCache,
    /// Dinero-IV-style trace simulation: materialise the full access trace,
    /// then replay it; exact for any memory depth.
    Trace,
}

impl Backend {
    /// Every backend, warping with default options (the order of the
    /// paper's evaluation).
    pub const ALL: [Backend; 5] = [
        Backend::Classic,
        Backend::Warping(WarpingOptions::DEFAULT),
        Backend::Haystack,
        Backend::PolyCache,
        Backend::Trace,
    ];

    /// The warping backend with default tuning options.
    pub fn warping() -> Self {
        Backend::Warping(WarpingOptions::default())
    }

    /// A short stable identifier, usable in JSON and on the command line.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Classic => "classic",
            Backend::Warping(_) => "warping",
            Backend::Haystack => "haystack",
            Backend::PolyCache => "polycache",
            Backend::Trace => "trace",
        }
    }

    /// Parses a backend from its [`label`](Backend::label) (warping gets
    /// the default options).
    pub fn by_name(name: &str) -> Option<Backend> {
        match name {
            "classic" => Some(Backend::Classic),
            "warping" => Some(Backend::warping()),
            "haystack" => Some(Backend::Haystack),
            "polycache" => Some(Backend::PolyCache),
            "trace" => Some(Backend::Trace),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One unit of work for the [`Engine`](crate::Engine): a kernel × memory
/// configuration × backend triple.
#[derive(Clone, PartialEq, Debug)]
pub struct SimRequest {
    /// What to simulate.
    pub kernel: KernelSpec,
    /// The memory system to simulate it on.
    pub memory: MemoryConfig,
    /// The simulator to use.
    pub backend: Backend,
}

impl SimRequest {
    /// A request from any memory description convertible to
    /// [`MemoryConfig`] (e.g. `CacheConfig` or `HierarchyConfig`).
    pub fn new(kernel: KernelSpec, memory: impl Into<MemoryConfig>, backend: Backend) -> Self {
        SimRequest {
            kernel,
            memory: memory.into(),
            backend,
        }
    }

    /// The full kernel × memory × backend grid, in row-major order
    /// (kernels outermost) — the shape
    /// [`Engine::run_batch`](crate::Engine::run_batch) fans out across
    /// threads.
    pub fn grid(
        kernels: &[KernelSpec],
        memories: &[MemoryConfig],
        backends: &[Backend],
    ) -> Vec<SimRequest> {
        let mut requests = Vec::with_capacity(kernels.len() * memories.len() * backends.len());
        for kernel in kernels {
            for memory in memories {
                for backend in backends {
                    requests.push(SimRequest {
                        kernel: kernel.clone(),
                        memory: memory.clone(),
                        backend: *backend,
                    });
                }
            }
        }
        requests
    }
}

// ---------------------------------------------------------------------------
// JSON (de)serialization, so request grids can be served over the wire.

impl Serialize for KernelSpec {
    fn serialize_value(&self) -> Value {
        match self {
            KernelSpec::Source { name, code } => Value::Object(vec![
                ("type".to_string(), Value::Str("source".to_string())),
                ("name".to_string(), Value::Str(name.clone())),
                ("code".to_string(), Value::Str(code.clone())),
            ]),
            KernelSpec::PolyBench { kernel, dataset } => Value::Object(vec![
                ("type".to_string(), Value::Str("polybench".to_string())),
                ("kernel".to_string(), Value::Str(kernel.name().to_string())),
                (
                    "dataset".to_string(),
                    Value::Str(dataset.name().to_string()),
                ),
            ]),
            // A prebuilt SCoP is an in-process optimisation; over the wire
            // only its name travels.
            KernelSpec::Prebuilt { name, .. } => Value::Object(vec![
                ("type".to_string(), Value::Str("prebuilt".to_string())),
                ("name".to_string(), Value::Str(name.clone())),
            ]),
        }
    }
}

impl Deserialize for KernelSpec {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        let kind = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or("kernel spec is missing `type`")?;
        match kind {
            "source" => {
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("source kernel spec is missing `name`")?;
                let code = value
                    .get("code")
                    .and_then(Value::as_str)
                    .ok_or("source kernel spec is missing `code`")?;
                Ok(KernelSpec::source(name, code))
            }
            "polybench" => {
                let kernel = value
                    .get("kernel")
                    .and_then(Value::as_str)
                    .ok_or("polybench kernel spec is missing `kernel`")?;
                let kernel = Kernel::by_name(kernel)
                    .ok_or_else(|| format!("unknown PolyBench kernel `{kernel}`"))?;
                let dataset = value
                    .get("dataset")
                    .and_then(Value::as_str)
                    .ok_or("polybench kernel spec is missing `dataset`")?;
                let dataset = dataset_by_name(dataset)
                    .ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
                Ok(KernelSpec::polybench(kernel, dataset))
            }
            "prebuilt" => Err(
                "prebuilt kernel specs are an in-process optimisation and cannot travel over \
                 the wire (only their name is serialized); send a `source` or `polybench` spec \
                 instead"
                    .to_string(),
            ),
            other => Err(format!("cannot deserialize kernel spec of type `{other}`")),
        }
    }
}

/// Parses a dataset name (case-insensitive, PolyBench spelling).
pub fn dataset_by_name(name: &str) -> Option<Dataset> {
    match name.to_ascii_lowercase().as_str() {
        "mini" => Some(Dataset::Mini),
        "small" => Some(Dataset::Small),
        "medium" => Some(Dataset::Medium),
        "large" => Some(Dataset::Large),
        "extralarge" | "xl" => Some(Dataset::ExtraLarge),
        _ => None,
    }
}

impl Serialize for Backend {
    fn serialize_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl Deserialize for Backend {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        let name = value
            .as_str()
            .ok_or_else(|| format!("expected a backend name, got {value:?}"))?;
        Backend::by_name(name).ok_or_else(|| format!("unknown backend `{name}`"))
    }
}

impl Serialize for SimRequest {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("kernel".to_string(), self.kernel.serialize_value()),
            ("memory".to_string(), self.memory.serialize_value()),
            ("backend".to_string(), self.backend.serialize_value()),
        ])
    }
}

impl Deserialize for SimRequest {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        let kernel = KernelSpec::deserialize_value(
            value.get("kernel").ok_or("request is missing `kernel`")?,
        )?;
        let memory = MemoryConfig::deserialize_value(
            value.get("memory").ok_or("request is missing `memory`")?,
        )?;
        let backend = Backend::deserialize_value(
            value.get("backend").ok_or("request is missing `backend`")?,
        )?;
        Ok(SimRequest {
            kernel,
            memory,
            backend,
        })
    }
}
