//! Stable content addresses for simulation requests.
//!
//! The serving layer (`crates/serve`) keys its report cache and its
//! in-flight dedup map on [`SimRequest::canonical_hash`]: a 128-bit digest
//! of the request's *meaning* — the canonicalised kernel AST
//! ([`scop::canonicalize`]: α-renamed variables, normalised affine
//! expressions and bounds) × the memory configuration × the backend and its
//! options.  Two requests with equal hashes produce bit-identical
//! [`SimReport`](crate::SimReport)s (up to wall-clock timing fields), so a
//! cached report can be replayed for any request that hashes the same.
//!
//! The digest is FNV-1a/128 over a deterministic rendering of those three
//! components.  FNV is stable across processes, platforms and Rust
//! versions (unlike `DefaultHasher`, which is explicitly allowed to
//! change), which makes the hash usable as an on-the-wire cache address,
//! not just an in-process map key.  It is not collision-resistant against
//! adversarial inputs; the cache stores the digest only, trading a
//! 2⁻¹²⁸-ish accidental-collision risk for never storing request bodies.

use crate::request::{Backend, KernelSpec, SimRequest};
use serde::{Serialize, Value};
use std::fmt;

/// A 128-bit stable content address of a [`SimRequest`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalHash(u128);

impl CanonicalHash {
    /// The raw 128-bit digest.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Reconstructs a hash from its raw digest (e.g. a value previously
    /// obtained via [`CanonicalHash::as_u128`] and stored out of band).
    pub fn from_u128(raw: u128) -> Self {
        CanonicalHash(raw)
    }

    /// Digests a list of `(tag, body)` components with the same
    /// length-prefixed FNV-1a/128 scheme used by
    /// [`SimRequest::canonical_hash`].  The serving layer uses this to
    /// derive secondary addresses (e.g. family ids) that live in the same
    /// hash space.
    pub fn of_components(components: &[(&str, &str)]) -> Self {
        let mut fnv = Fnv128::new();
        for (tag, body) in components {
            fnv.component(tag, body);
        }
        fnv.finish()
    }
}

impl fmt::Display for CanonicalHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for CanonicalHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CanonicalHash({:032x})", self.0)
    }
}

impl Serialize for CanonicalHash {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Streaming FNV-1a over a 128-bit state.
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Self {
        Fnv128(Self::OFFSET_BASIS)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Writes a length-prefixed component, so concatenation ambiguities
    /// (`"ab" + "c"` vs `"a" + "bc"`) cannot alias.
    fn component(&mut self, tag: &str, body: &str) {
        self.write(tag.as_bytes());
        self.write(&(body.len() as u64).to_le_bytes());
        self.write(body.as_bytes());
    }

    fn finish(self) -> CanonicalHash {
        CanonicalHash(self.0)
    }
}

impl KernelSpec {
    /// A deterministic canonical rendering of the kernel, shared by every
    /// spelling of the same program (see [`scop::canonicalize`]).
    ///
    /// * [`KernelSpec::Source`] parses the mini-C text and renders the
    ///   canonicalised AST, so renamed/re-spelled sources collapse onto one
    ///   address.  Sources that do not parse hash by their raw text (they
    ///   error identically on every submission, so caching the error key is
    ///   still sound).
    /// * [`KernelSpec::PolyBench`] renders the generated benchmark source
    ///   through the same canonical path — a hand-sent `source` request
    ///   containing a PolyBench kernel shares its cache address.
    /// * [`KernelSpec::Prebuilt`] renders the elaborated SCoP structurally
    ///   (names are already erased there).
    ///
    /// The display name is deliberately excluded: it changes what reports
    /// print, not what they count — but note the cached report replays the
    /// original submitter's name.
    pub fn canonical_text(&self) -> String {
        match self {
            KernelSpec::Source { code, .. } => match scop::parse_program(code) {
                Ok(program) => format!("ast:{}", scop::canonical_text(&program)),
                Err(_) => format!("unparsed:{code}"),
            },
            KernelSpec::PolyBench { kernel, dataset } => {
                let source = kernel.source(*dataset);
                match scop::parse_program(&source) {
                    Ok(program) => format!("ast:{}", scop::canonical_text(&program)),
                    Err(_) => format!("polybench:{}@{}", kernel.name(), dataset.name()),
                }
            }
            KernelSpec::Prebuilt { scop, .. } => format!("scop:{scop:?}"),
            // A parametric kernel addresses by the *instance* it denotes:
            // the template is instantiated (parse is memoised process-wide)
            // and the substituted program rendered through the same
            // canonical path as a constant `source` request.  A hand-written
            // constant kernel and a parametric one that stamps out the same
            // program therefore share one cache address.
            KernelSpec::Parametric { code, bindings, .. } => {
                match scop::ParametricScop::cached(code) {
                    Ok(template) => {
                        let values = scop::ParamBindings::from_pairs(bindings.iter().cloned());
                        match template.instantiate_program(&values) {
                            Ok(program) => format!("ast:{}", scop::canonical_text(&program)),
                            Err(e) => format!("badbindings:{code}|{bindings:?}|{e}"),
                        }
                    }
                    Err(_) => format!("unparsed:{code}|{bindings:?}"),
                }
            }
        }
    }

    /// A deterministic canonical rendering of the kernel *family*: the
    /// parametric template with its parameters left symbolic, α-renamed so
    /// that renamed and re-spelled templates collapse onto one family text.
    ///
    /// Returns `None` for non-parametric kernels — a constant kernel is an
    /// instance, not a family.
    pub fn family_text(&self) -> Option<String> {
        match self {
            KernelSpec::Parametric { code, .. } => match scop::ParametricScop::cached(code) {
                Ok(template) => Some(format!("family:{}", template.family_text())),
                Err(_) => Some(format!("unparsed-family:{code}")),
            },
            _ => None,
        }
    }

    /// The 128-bit address of this kernel's family ([`family_text`] digested
    /// with the request FNV scheme), or `None` for non-parametric kernels.
    ///
    /// [`family_text`]: KernelSpec::family_text
    pub fn family_hash(&self) -> Option<CanonicalHash> {
        let family = self.family_text()?;
        Some(CanonicalHash::of_components(&[("family", &family)]))
    }
}

impl SimRequest {
    /// The stable 128-bit content address of this request: equal for every
    /// spelling of the same kernel × memory × backend triple, different
    /// whenever any semantically meaningful field (kernel meaning, level
    /// geometry, replacement/write policy, backend or result-shaping
    /// options) differs.
    pub fn canonical_hash(&self) -> CanonicalHash {
        let mut fnv = Fnv128::new();
        fnv.component("kernel", &self.kernel.canonical_text());
        fnv.component("config", &self.config_text());
        fnv.finish()
    }

    /// A deterministic rendering of the request's kernel-independent half:
    /// the memory configuration and the backend with its options.  The
    /// serving layer keys family-tier instance memos by
    /// `config_text × bindings`, so it must separate requests exactly as
    /// finely as [`SimRequest::canonical_hash`] does.
    pub fn config_text(&self) -> String {
        let memory = serde_json::to_string(&self.memory).expect("memory configs serialize");
        let backend = match &self.backend {
            // Every warping option shapes the report (the tuning knobs
            // change the telemetry block even when miss counts agree), so
            // the whole option record is part of the address.
            Backend::Warping(options) => format!("warping:{options:?}"),
            // The sampling knobs change the extrapolated counts and the
            // error bound, so approximate reports at different rates never
            // share an address — and, crucially, never share one with an
            // exact report of the same kernel.
            Backend::Sampled(options) => format!("sampled:{options:?}"),
            other => other.label().to_string(),
        };
        format!("memory:{memory};backend:{backend}")
    }

    /// The stable 128-bit address of this request's kernel *family*
    /// (the parametric template with parameters symbolic), or `None` for
    /// non-parametric kernels.
    ///
    /// The family address deliberately ignores bindings, memory config and
    /// backend: one family spans its whole exploration grid, and the serving
    /// layer keys instances within it by `(config, bindings)`.
    pub fn family_hash(&self) -> Option<CanonicalHash> {
        self.kernel.family_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy, WritePolicy};
    use warping::WarpingOptions;

    fn request(code: &str) -> SimRequest {
        SimRequest::new(
            KernelSpec::source("k", code),
            MemoryConfig::from(CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru)),
            Backend::warping(),
        )
    }

    #[test]
    fn renamed_kernels_share_an_address() {
        let a = request("double A[64]; for (i = 0; i < 64; i++) A[i] = A[i];");
        let b = request("double Z[64]; for (j = 0; j < 64; j++) Z[j] = Z[j];");
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn display_name_does_not_address() {
        let code = "double A[64]; for (i = 0; i < 64; i++) A[i] = A[i];";
        let a = request(code);
        let mut b = request(code);
        b.kernel = KernelSpec::source("other-name", code);
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn polybench_and_its_source_share_an_address() {
        let kernel = polybench::Kernel::Jacobi1d;
        let dataset = polybench::Dataset::Mini;
        let memory = MemoryConfig::test_system();
        let pb = SimRequest::new(
            KernelSpec::polybench(kernel, dataset),
            memory.clone(),
            Backend::Classic,
        );
        let src = SimRequest::new(
            KernelSpec::source("jacobi-by-hand", kernel.source(dataset)),
            memory,
            Backend::Classic,
        );
        assert_eq!(pb.canonical_hash(), src.canonical_hash());
    }

    #[test]
    fn semantic_fields_all_address() {
        let code = "double A[64]; for (i = 0; i < 64; i++) A[i] = A[i];";
        let base = request(code);
        let base_hash = base.canonical_hash();

        let mut other = base.clone();
        other.kernel =
            KernelSpec::source("k", "double A[64]; for (i = 0; i < 63; i++) A[i] = A[i];");
        assert_ne!(base_hash, other.canonical_hash(), "trip count");

        let mut other = base.clone();
        other.memory = MemoryConfig::from(CacheConfig::new(1024, 4, 64, ReplacementPolicy::Fifo));
        assert_ne!(base_hash, other.canonical_hash(), "policy");

        let mut other = base.clone();
        other.memory = MemoryConfig::from(CacheConfig::new(2048, 4, 64, ReplacementPolicy::Lru));
        assert_ne!(base_hash, other.canonical_hash(), "geometry");

        let mut other = base.clone();
        other.memory = other
            .memory
            .with_write_policy(WritePolicy::WriteThroughNoAllocate);
        assert_ne!(base_hash, other.canonical_hash(), "write policy");

        let mut other = base.clone();
        other.backend = Backend::Classic;
        assert_ne!(base_hash, other.canonical_hash(), "backend");

        let mut other = base.clone();
        other.backend = Backend::Warping(WarpingOptions {
            label_renorm: false,
            ..WarpingOptions::default()
        });
        assert_ne!(base_hash, other.canonical_hash(), "warping options");
    }

    const TEMPLATE: &str = "param N;\n\
        double A[N];\n\
        for (i = 0; i < N; i++) A[i] = A[i];";

    #[test]
    fn parametric_instances_share_the_constant_kernel_address() {
        let memory = MemoryConfig::from(CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru));
        let parametric = SimRequest::new(
            KernelSpec::parametric("fam", TEMPLATE, [("N", 64)]),
            memory.clone(),
            Backend::warping(),
        );
        let constant = request("double A[64]; for (i = 0; i < 64; i++) A[i] = A[i];");
        assert_eq!(parametric.canonical_hash(), constant.canonical_hash());

        // Different bindings denote a different simulation.
        let other = SimRequest::new(
            KernelSpec::parametric("fam", TEMPLATE, [("N", 65)]),
            memory,
            Backend::warping(),
        );
        assert_ne!(parametric.canonical_hash(), other.canonical_hash());
    }

    #[test]
    fn family_hash_spans_bindings_configs_and_renamings() {
        let memory = MemoryConfig::from(CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru));
        let a = SimRequest::new(
            KernelSpec::parametric("fam", TEMPLATE, [("N", 64)]),
            memory.clone(),
            Backend::warping(),
        );
        // Renamed template, different bindings, different config/backend:
        // still the same family.
        let renamed = "param M;\ndouble Z[M];\nfor (k = 0; k < M; k++) Z[k] = Z[k];";
        let b = SimRequest::new(
            KernelSpec::parametric("other", renamed, [("M", 256)]),
            MemoryConfig::from(CacheConfig::new(2048, 8, 64, ReplacementPolicy::Plru)),
            Backend::Classic,
        );
        assert_eq!(a.family_hash(), b.family_hash());
        assert!(a.family_hash().is_some());
        assert_ne!(a.canonical_hash(), b.canonical_hash());

        // Constant kernels have no family.
        assert_eq!(
            request("double A[8]; for (i = 0; i < 8; i++) A[i] = A[i];").family_hash(),
            None
        );

        // A structurally different template is a different family.
        let widened = "param N;\ndouble A[N];\nfor (i = 0; i < N; i++) A[i] = A[i+1];";
        let c = SimRequest::new(
            KernelSpec::parametric("fam", widened, [("N", 64)]),
            MemoryConfig::from(CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru)),
            Backend::warping(),
        );
        assert_ne!(a.family_hash(), c.family_hash());
    }

    #[test]
    fn hash_is_stable_across_runs() {
        // Pin the digest of a fixed request: the hash is an on-the-wire
        // cache address, so accidental algorithm changes must be loud.
        let hash = request("double A[8]; for (i = 0; i < 8; i++) A[i] = A[i];")
            .canonical_hash()
            .to_string();
        assert_eq!(hash.len(), 32);
        let again = request("double A[8]; for (i = 0; i < 8; i++) A[i] = A[i];")
            .canonical_hash()
            .to_string();
        assert_eq!(hash, again);
    }
}
