//! Observational equivalence of the sparse `CacheState` store and a dense
//! reference model.
//!
//! `CacheState` stores only the touched sets (plus one shared empty-set
//! template); this suite drives it and a plain `Vec<SetState>` reference
//! through random interleavings of `access` / `classify` / `permute_sets` /
//! `rotate_sets` / `map_payloads` / `clone` across all four replacement
//! policies and both write-allocation modes, asserting after every step
//! that the two models are observationally identical: same per-set states
//! at every index, same hit/miss answers, same occupancy view.

use cache_model::{
    Access, AccessKind, CacheConfig, CacheState, MemBlock, ReplacementPolicy, SetState,
};
use proptest::prelude::*;

/// The dense reference: one eagerly allocated `SetState` per cache set,
/// updated with exactly the per-set logic the sparse store delegates to.
#[derive(Clone)]
struct DenseCache {
    config: CacheConfig,
    sets: Vec<SetState<MemBlock>>,
}

impl DenseCache {
    fn new(config: &CacheConfig) -> Self {
        DenseCache {
            config: config.clone(),
            sets: (0..config.num_sets())
                .map(|_| SetState::new(config.policy(), config.assoc()))
                .collect(),
        }
    }

    fn access(&mut self, access: Access) -> bool {
        let block = self.config.block_of_address(access.address);
        let set = &mut self.sets[self.config.index(block)];
        match set.find(|b| *b == block) {
            Some(line) => {
                set.on_hit(self.config.policy(), line);
                true
            }
            None => {
                if access.kind != AccessKind::Write || self.config.write_allocate() {
                    set.on_miss_insert(self.config.policy(), block);
                }
                false
            }
        }
    }

    fn classify(&self, address: u64) -> bool {
        let block = self.config.block_of_address(address);
        self.sets[self.config.index(block)].classify(&block)
    }

    /// Set `i` of the result is set `perm(i)` of `self` (the dense
    /// definition `permute_sets` must reproduce).
    fn permute(&self, perm: impl Fn(usize) -> usize) -> DenseCache {
        DenseCache {
            config: self.config.clone(),
            sets: (0..self.sets.len())
                .map(|i| self.sets[perm(i)].clone())
                .collect(),
        }
    }

    fn map_payloads(&self, mut f: impl FnMut(&MemBlock) -> MemBlock) -> DenseCache {
        DenseCache {
            config: self.config.clone(),
            sets: self.sets.iter().map(|s| s.map_payloads(&mut f)).collect(),
        }
    }

    fn occupied(&self) -> Vec<usize> {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, _)| i)
            .collect()
    }
}

/// One step of a random history over both models.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// `access(addr)` — read or write, honouring write allocation.
    Access { addr: u64, write: bool },
    /// `classify_block(addr)` — answers must agree, no state change.
    Classify { addr: u64 },
    /// Replace both states by their rotation by `k` sets, exercising
    /// `permute_sets` and the sparse-native `rotate_sets` alternately.
    Rotate { k: usize, native: bool },
    /// Replace both states by `map_payloads(b + delta)`.
    Map { delta: u64 },
    /// Replace both states by a clone (and check clone equality).
    Clone,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        0u64..10,
        0u64..(64 * 64),
        prop::bool::ANY,
        0usize..8,
        1u64..100,
    )
        .prop_map(|(kind, addr, flag, k, delta)| match kind {
            0..=5 => Step::Access { addr, write: flag },
            6 => Step::Classify { addr },
            7 => Step::Rotate { k, native: flag },
            8 => Step::Map { delta },
            _ => Step::Clone,
        })
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        prop::sample::select(ReplacementPolicy::ALL.to_vec()),
        prop::sample::select(vec![1usize, 2, 4, 8]),
        prop::sample::select(vec![1usize, 2, 4]),
        prop::bool::ANY,
    )
        .prop_map(|(policy, sets, assoc, allocate)| {
            CacheConfig::with_sets(sets, assoc, 64, policy).with_write_allocate(allocate)
        })
}

/// Every observation the two models expose must coincide.
fn assert_observationally_equal(sparse: &CacheState<MemBlock>, dense: &DenseCache) {
    assert_eq!(sparse.num_sets(), dense.sets.len());
    for (i, reference) in dense.sets.iter().enumerate() {
        assert_eq!(sparse.set(i), reference, "set {i} diverged");
    }
    assert_eq!(
        sparse.occupied_indices().collect::<Vec<_>>(),
        dense.occupied()
    );
    for (i, set) in sparse.occupied_entries() {
        assert_eq!(set, &dense.sets[i]);
    }
    // The lazy all-sets iterator agrees with indexed access.
    for (i, set) in sparse.sets() {
        assert_eq!(set, &dense.sets[i]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sparse_store_is_observationally_dense(
        config in arb_config(),
        steps in proptest::collection::vec(arb_step(), 1..50),
    ) {
        let mut sparse = CacheState::new(&config);
        let mut dense = DenseCache::new(&config);
        let num_sets = config.num_sets();
        for step in steps {
            match step {
                Step::Access { addr, write } => {
                    let access = if write { Access::write(addr) } else { Access::read(addr) };
                    let hit_sparse = sparse.access(&config, access);
                    let hit_dense = dense.access(access);
                    prop_assert_eq!(hit_sparse, hit_dense, "hit/miss diverged at {:?}", step);
                }
                Step::Classify { addr } => {
                    let block = config.block_of_address(addr);
                    prop_assert_eq!(sparse.classify_block(&config, block), dense.classify(addr));
                }
                Step::Rotate { k, native } => {
                    let k = k % num_sets;
                    // Rotation by +k: new set (i + k) mod n holds old set i.
                    dense = dense.permute(|i| (i + num_sets - k) % num_sets);
                    sparse = if native {
                        sparse.rotate_sets(k as i64)
                    } else {
                        sparse.permute_sets(|i| (i + num_sets - k) % num_sets)
                    };
                }
                Step::Map { delta } => {
                    dense = dense.map_payloads(|b| MemBlock(b.0 + delta));
                    sparse = sparse.map_payloads(|b| MemBlock(b.0 + delta));
                }
                Step::Clone => {
                    let copy = sparse.clone();
                    prop_assert_eq!(&copy, &sparse, "a clone must compare equal");
                    sparse = copy;
                    dense = dense.clone();
                }
            }
            assert_observationally_equal(&sparse, &dense);
        }
    }

    /// Construction cost aside, a sparse state that never materialised some
    /// set must still answer for it exactly like a fresh dense set.
    #[test]
    fn untouched_sets_answer_as_initial(
        config in arb_config(),
        history in proptest::collection::vec(0u64..(64 * 64), 0..30),
    ) {
        let mut sparse = CacheState::new(&config);
        let mut dense = DenseCache::new(&config);
        for addr in history {
            let access = Access::read(addr);
            prop_assert_eq!(sparse.access(&config, access), dense.access(access));
        }
        let initial: SetState<MemBlock> = SetState::new(config.policy(), config.assoc());
        for i in 0..config.num_sets() {
            prop_assert_eq!(sparse.set(i), &dense.sets[i]);
            if dense.sets[i].is_empty() {
                prop_assert_eq!(sparse.set(i), &initial, "empty set {} left its initial state", i);
            }
        }
    }
}
