//! Property-based tests of the data-independence theorems.
//!
//! * Property 1 / Theorem 1: for every index-preserving bijection `π`,
//!   `π(UpCache(c, b)) = UpCache(π(c), π(b))` and classification is
//!   invariant under `π`.
//! * Theorem 2 (cache warping): if `c1 = UpCache(c0, s0) = π(c0)` and the
//!   access sequences repeat under `π`, the final state is `πⁿ(c1)` and the
//!   misses of each repetition equal those of the first.
//! * Corollary 5: the same holds for two-level hierarchies.

use cache_model::bijection::ShiftBijection;
use cache_model::{
    CacheConfig, CacheState, HierarchyConfig, HierarchyState, MemBlock, ReplacementPolicy,
};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop::sample::select(ReplacementPolicy::ALL.to_vec())
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        arb_policy(),
        prop::sample::select(vec![1usize, 2, 4, 8]),
        prop::sample::select(vec![1usize, 2, 4]),
    )
        .prop_map(|(policy, sets, assoc)| CacheConfig::with_sets(sets, assoc, 64, policy))
}

fn arb_blocks(max_block: u64, len: usize) -> impl Strategy<Value = Vec<MemBlock>> {
    proptest::collection::vec((0..max_block).prop_map(MemBlock), 1..len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 1: update commutes with index-preserving bijections.
    #[test]
    fn update_commutes_with_bijection(
        config in arb_config(),
        history in arb_blocks(64, 40),
        block in 0u64..64,
        delta in 0i64..32,
    ) {
        let pi = ShiftBijection::new(delta);
        let mut c = CacheState::new(&config);
        for b in &history {
            c.access_block(&config, *b);
        }
        let b = MemBlock(block);

        let mut updated = c.clone();
        let hit_original = updated.access_block(&config, b);
        let lhs = pi.apply_to_cache(&config, &updated);

        let mut rhs = pi.apply_to_cache(&config, &c);
        let hit_renamed = rhs.access_block(&config, pi.apply(b));

        prop_assert_eq!(lhs, rhs);
        prop_assert_eq!(hit_original, hit_renamed, "classification must be invariant");
    }

    /// Theorem 1 for two-level hierarchies (Corollary 5).
    #[test]
    fn hierarchy_update_commutes_with_bijection(
        policy1 in arb_policy(),
        policy2 in arb_policy(),
        history in arb_blocks(64, 40),
        block in 0u64..64,
        delta in 0i64..16,
    ) {
        let config = HierarchyConfig::new(
            CacheConfig::with_sets(2, 2, 64, policy1),
            CacheConfig::with_sets(4, 4, 64, policy2),
        );
        let pi = ShiftBijection::new(delta);
        let mut h = HierarchyState::new(&config);
        for b in &history {
            h.access_block(&config, *b);
        }
        let b = MemBlock(block);

        let mut updated = h.clone();
        let out_original = updated.access_block(&config, b);
        let lhs = pi.apply_to_hierarchy(&config, &updated);

        let mut rhs = pi.apply_to_hierarchy(&config, &h);
        let out_renamed = rhs.access_block(&config, pi.apply(b));

        prop_assert_eq!(lhs, rhs);
        prop_assert_eq!(out_original, out_renamed);
    }

    /// The key lemma behind Theorem 2 (cache warping): starting from
    /// π-related states, π-related access sequences produce π-related states
    /// and the same number of misses.  Iterating this lemma is exactly what
    /// justifies fast-forwarding the simulation.
    #[test]
    fn shifted_sequences_from_renamed_states_agree(
        config in arb_config(),
        history in arb_blocks(32, 40),
        pattern in arb_blocks(32, 10),
        delta in 0i64..16,
    ) {
        let pi = ShiftBijection::new(delta);
        let mut c0 = CacheState::new(&config);
        for b in &history {
            c0.access_block(&config, *b);
        }
        let mut c1 = pi.apply_to_cache(&config, &c0);

        let mut misses0 = 0u64;
        let mut misses1 = 0u64;
        for b in &pattern {
            if !c0.access_block(&config, *b) {
                misses0 += 1;
            }
            if !c1.access_block(&config, pi.apply(*b)) {
                misses1 += 1;
            }
        }
        prop_assert_eq!(misses0, misses1);
        prop_assert_eq!(pi.apply_to_cache(&config, &c0), c1);
    }
}
