//! The N-level memory-system configuration shared by every simulator.
//!
//! Historically the workspace described memory systems with two unrelated
//! types — `CacheConfig` for a single level and [`HierarchyConfig`] for
//! exactly two — and the warping simulator duplicated the split with its own
//! `WarpingMemory` enum.  [`MemoryConfig`] replaces all of them: an ordered
//! list of cache levels (L1 first) plus a write policy, with conversions
//! from the legacy types and JSON (de)serialization so that requests and
//! reports can travel over the wire.

use crate::cache::CacheConfig;
use crate::hierarchy::{HierarchyConfig, WritePolicy};
use crate::policy::ReplacementPolicy;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// An N-level memory-system configuration: the single source of truth for
/// what is being simulated, accepted by every backend of the `engine`
/// facade.
///
/// Levels are ordered from the core outwards (index 0 is the L1).  The
/// hierarchy is non-inclusive non-exclusive: on a miss at level `i` the
/// access is forwarded to level `i + 1`.
///
/// ```
/// use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
///
/// let l1 = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru);
/// let memory = MemoryConfig::from(l1);
/// assert_eq!(memory.depth(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemoryConfig {
    levels: Vec<CacheConfig>,
    write_policy: WritePolicy,
}

/// An invalid [`MemoryConfig`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemoryConfigError {
    /// The level list was empty.
    NoLevels,
    /// Two levels disagree on the cache line size (unsupported).
    MismatchedLineSizes {
        /// Index of the offending level.
        level: usize,
    },
    /// The number of sets of a level is not a multiple of the number of sets
    /// of the previous level (the assumption under which Corollary 5 of the
    /// paper applies).
    SetCountNotMultiple {
        /// Index of the offending level.
        level: usize,
    },
    /// The levels disagree on their write-allocate flags; one write policy
    /// applies across the whole hierarchy.
    MixedWriteAllocation,
}

impl fmt::Display for MemoryConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryConfigError::NoLevels => {
                write!(f, "a memory configuration needs at least one cache level")
            }
            MemoryConfigError::MismatchedLineSizes { level } => write!(
                f,
                "level {} uses a different line size than level {} (all levels must agree)",
                level + 1,
                level
            ),
            MemoryConfigError::SetCountNotMultiple { level } => write!(
                f,
                "the number of sets of level {} must be a multiple of the number of sets of level {}",
                level + 1,
                level
            ),
            MemoryConfigError::MixedWriteAllocation => write!(
                f,
                "all levels must agree on write allocation; set one policy with with_write_policy"
            ),
        }
    }
}

impl std::error::Error for MemoryConfigError {}

impl MemoryConfig {
    /// A memory system with the given levels (L1 first).  The write policy
    /// is derived from the levels' own write-allocate flags, so that
    /// `MemoryConfig::new(vec![cfg])` and [`MemoryConfig::single`]`(cfg)`
    /// agree for every `cfg`.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty, the levels disagree on the
    /// line size, a level's set count is not a multiple of its
    /// predecessor's, or the levels disagree on write allocation (the
    /// hierarchy applies one policy across all levels — resolve the
    /// conflict with [`MemoryConfig::with_write_policy`] on uniform
    /// levels).
    pub fn new(levels: Vec<CacheConfig>) -> Result<Self, MemoryConfigError> {
        if levels.is_empty() {
            return Err(MemoryConfigError::NoLevels);
        }
        for (i, pair) in levels.windows(2).enumerate() {
            if pair[0].line_size() != pair[1].line_size() {
                return Err(MemoryConfigError::MismatchedLineSizes { level: i });
            }
            if pair[1].num_sets() % pair[0].num_sets() != 0 {
                return Err(MemoryConfigError::SetCountNotMultiple { level: i });
            }
        }
        let allocate = levels[0].write_allocate();
        if levels.iter().any(|l| l.write_allocate() != allocate) {
            return Err(MemoryConfigError::MixedWriteAllocation);
        }
        let write_policy = if allocate {
            WritePolicy::WriteBackWriteAllocate
        } else {
            WritePolicy::WriteThroughNoAllocate
        };
        Ok(MemoryConfig {
            levels,
            write_policy,
        })
    }

    /// A single-level memory system.  The write policy is taken from the
    /// cache's own write-allocate flag, matching the legacy
    /// single-cache behaviour.
    pub fn single(l1: CacheConfig) -> Self {
        let write_policy = if l1.write_allocate() {
            WritePolicy::WriteBackWriteAllocate
        } else {
            WritePolicy::WriteThroughNoAllocate
        };
        MemoryConfig {
            levels: vec![l1],
            write_policy,
        }
    }

    /// A two-level memory system.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`HierarchyConfig::new`]:
    /// mismatched line sizes or an L2 set count that is not a multiple of
    /// the L1 set count.
    pub fn two_level(l1: CacheConfig, l2: CacheConfig) -> Self {
        MemoryConfig::from(HierarchyConfig::new(l1, l2))
    }

    /// A three-level memory system.
    ///
    /// # Panics
    ///
    /// Panics under the conditions [`MemoryConfig::new`] reports as errors:
    /// mismatched line sizes, a set count that is not a multiple of the
    /// previous level's, or mixed write-allocate flags.
    pub fn three_level(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> Self {
        MemoryConfig::new(vec![l1, l2, l3]).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Appends a further (outer) cache level, returning `self` for chaining.
    ///
    /// # Errors
    ///
    /// Returns an error if the new level's line size or set count is
    /// incompatible with the existing last level.
    pub fn with_level(self, level: CacheConfig) -> Result<Self, MemoryConfigError> {
        let policy = self.write_policy;
        let mut levels = self.normalized().levels;
        levels.push(level.with_write_allocate(policy.allocates_on_write()));
        Ok(MemoryConfig::new(levels)?.with_write_policy(policy))
    }

    /// Sets the write policy, returning `self` for chaining.
    pub fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// The same configuration with every level's write-allocate flag set
    /// from [`MemoryConfig::write_policy`] — the canonical form every
    /// simulator backend operates on, so that the hierarchy-wide policy
    /// governs regardless of how the levels were built.
    pub fn normalized(&self) -> MemoryConfig {
        let allocate = self.write_policy.allocates_on_write();
        MemoryConfig {
            levels: self
                .levels
                .iter()
                .map(|level| level.clone().with_write_allocate(allocate))
                .collect(),
            write_policy: self.write_policy,
        }
    }

    /// The cache levels, L1 first.
    pub fn levels(&self) -> &[CacheConfig] {
        &self.levels
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The first-level cache.
    pub fn l1(&self) -> &CacheConfig {
        &self.levels[0]
    }

    /// The write policy applied across the hierarchy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// The cache line size shared by all levels.
    pub fn line_size(&self) -> u64 {
        self.levels[0].line_size()
    }

    /// The single cache level, if this is a one-level system.
    pub fn as_single(&self) -> Option<&CacheConfig> {
        match self.levels.as_slice() {
            [l1] => Some(l1),
            _ => None,
        }
    }

    /// The equivalent legacy [`HierarchyConfig`], if this is a two-level
    /// system.
    pub fn to_hierarchy(&self) -> Option<HierarchyConfig> {
        match self.levels.as_slice() {
            [l1, l2] => Some(
                HierarchyConfig::new(l1.clone(), l2.clone()).with_write_policy(self.write_policy),
            ),
            _ => None,
        }
    }

    /// The paper's test system: its private L1 alone, with a configurable
    /// replacement policy (32 KiB, 8-way, 64-byte lines).
    pub fn test_system_l1(policy: ReplacementPolicy) -> Self {
        MemoryConfig::single(CacheConfig::new(32 * 1024, 8, 64, policy))
    }

    /// The paper's test system: both private levels (PLRU L1, Quad-age-LRU
    /// L2).
    pub fn test_system() -> Self {
        MemoryConfig::from(HierarchyConfig::test_system())
    }

    /// The test system extended by a Cascade-Lake-sized shared L3 slice
    /// (8 MiB, 16-way, Quad-age LRU): the depth-3 scenario family.
    pub fn test_system_l3() -> Self {
        MemoryConfig::test_system()
            .with_level(CacheConfig::new(
                8 * 1024 * 1024,
                16,
                64,
                ReplacementPolicy::Qlru,
            ))
            .expect("the L3 slice is compatible with the private levels")
    }
}

impl From<CacheConfig> for MemoryConfig {
    fn from(l1: CacheConfig) -> Self {
        MemoryConfig::single(l1)
    }
}

impl From<HierarchyConfig> for MemoryConfig {
    fn from(config: HierarchyConfig) -> Self {
        MemoryConfig {
            levels: vec![config.l1, config.l2],
            write_policy: config.write_policy,
        }
    }
}

impl fmt::Display for MemoryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, level) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "L{}[{}]", i + 1, level)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JSON (de)serialization.

impl Serialize for crate::LevelStats {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("accesses".to_string(), Value::UInt(self.accesses)),
            ("hits".to_string(), Value::UInt(self.hits)),
            ("misses".to_string(), Value::UInt(self.misses)),
        ])
    }
}

impl Serialize for ReplacementPolicy {
    fn serialize_value(&self) -> Value {
        Value::Str(
            match self {
                ReplacementPolicy::Lru => "lru",
                ReplacementPolicy::Fifo => "fifo",
                ReplacementPolicy::Plru => "plru",
                ReplacementPolicy::Qlru => "qlru",
            }
            .to_string(),
        )
    }
}

impl Deserialize for ReplacementPolicy {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value.as_str() {
            Some("lru") => Ok(ReplacementPolicy::Lru),
            Some("fifo") => Ok(ReplacementPolicy::Fifo),
            Some("plru") => Ok(ReplacementPolicy::Plru),
            Some("qlru") => Ok(ReplacementPolicy::Qlru),
            _ => Err(format!(
                "expected one of \"lru\", \"fifo\", \"plru\", \"qlru\", got {value:?}"
            )),
        }
    }
}

impl Serialize for WritePolicy {
    fn serialize_value(&self) -> Value {
        Value::Str(
            match self {
                WritePolicy::WriteBackWriteAllocate => "write-allocate",
                WritePolicy::WriteThroughNoAllocate => "no-write-allocate",
            }
            .to_string(),
        )
    }
}

impl Deserialize for WritePolicy {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value.as_str() {
            Some("write-allocate") => Ok(WritePolicy::WriteBackWriteAllocate),
            Some("no-write-allocate") => Ok(WritePolicy::WriteThroughNoAllocate),
            _ => Err(format!(
                "expected \"write-allocate\" or \"no-write-allocate\", got {value:?}"
            )),
        }
    }
}

impl Serialize for CacheConfig {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("sets".to_string(), Value::UInt(self.num_sets() as u64)),
            ("assoc".to_string(), Value::UInt(self.assoc() as u64)),
            ("line_size".to_string(), Value::UInt(self.line_size())),
            ("policy".to_string(), self.policy().serialize_value()),
        ])
    }
}

impl Deserialize for CacheConfig {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("cache config is missing `{key}`"))
        };
        let sets = field("sets")?
            .as_u64()
            .ok_or("`sets` must be a positive integer")? as usize;
        let assoc = field("assoc")?
            .as_u64()
            .ok_or("`assoc` must be a positive integer")? as usize;
        let line_size = field("line_size")?
            .as_u64()
            .ok_or("`line_size` must be a positive integer")?;
        let policy = ReplacementPolicy::deserialize_value(field("policy")?)?;
        if sets == 0 || assoc == 0 || line_size == 0 {
            return Err("cache parameters must be positive".to_string());
        }
        Ok(CacheConfig::with_sets(sets, assoc, line_size, policy))
    }
}

impl Serialize for MemoryConfig {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("levels".to_string(), self.levels.serialize_value()),
            (
                "write_policy".to_string(),
                self.write_policy.serialize_value(),
            ),
        ])
    }
}

impl Deserialize for MemoryConfig {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        let levels = value
            .get("levels")
            .ok_or("memory config is missing `levels`")?;
        let levels: Vec<CacheConfig> = Vec::deserialize_value(levels)?;
        let mut config = MemoryConfig::new(levels).map_err(|e| e.to_string())?;
        if let Some(policy) = value.get("write_policy") {
            config = config.with_write_policy(WritePolicy::deserialize_value(policy)?);
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheConfig {
        CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru)
    }

    fn l2() -> CacheConfig {
        CacheConfig::new(1024 * 1024, 16, 64, ReplacementPolicy::Qlru)
    }

    #[test]
    fn from_cache_config_is_single_level() {
        let memory = MemoryConfig::from(l1());
        assert_eq!(memory.depth(), 1);
        assert_eq!(memory.as_single(), Some(&l1()));
        assert!(memory.to_hierarchy().is_none());
        assert_eq!(memory.write_policy(), WritePolicy::WriteBackWriteAllocate);
    }

    #[test]
    fn no_write_allocate_flag_is_preserved() {
        let memory = MemoryConfig::from(l1().no_write_allocate());
        assert_eq!(memory.write_policy(), WritePolicy::WriteThroughNoAllocate);
    }

    #[test]
    fn from_hierarchy_round_trips() {
        let hierarchy = HierarchyConfig::test_system();
        let memory = MemoryConfig::from(hierarchy.clone());
        assert_eq!(memory.depth(), 2);
        assert_eq!(memory.to_hierarchy(), Some(hierarchy));
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert_eq!(
            MemoryConfig::new(vec![]).unwrap_err(),
            MemoryConfigError::NoLevels
        );
        let mismatched = CacheConfig::new(64 * 1024, 8, 32, ReplacementPolicy::Lru);
        assert_eq!(
            MemoryConfig::new(vec![l1(), mismatched]).unwrap_err(),
            MemoryConfigError::MismatchedLineSizes { level: 0 }
        );
        let fewer_sets = CacheConfig::with_sets(48, 8, 64, ReplacementPolicy::Lru);
        assert_eq!(
            MemoryConfig::new(vec![l1(), fewer_sets]).unwrap_err(),
            MemoryConfigError::SetCountNotMultiple { level: 0 }
        );
    }

    #[test]
    fn new_derives_write_policy_from_uniform_flags() {
        // `new` and `single` agree for the same one-level input.
        let no_alloc = MemoryConfig::new(vec![l1().no_write_allocate()]).unwrap();
        assert_eq!(no_alloc.write_policy(), WritePolicy::WriteThroughNoAllocate);
        assert_eq!(no_alloc, MemoryConfig::single(l1().no_write_allocate()));
        // Mixed flags are rejected rather than silently resolved.
        assert_eq!(
            MemoryConfig::new(vec![l1().no_write_allocate(), l2()]).unwrap_err(),
            MemoryConfigError::MixedWriteAllocation
        );
    }

    #[test]
    fn normalized_applies_the_policy_to_every_level() {
        let memory = MemoryConfig::new(vec![l1(), l2()])
            .unwrap()
            .with_write_policy(WritePolicy::WriteThroughNoAllocate)
            .normalized();
        assert!(memory.levels().iter().all(|l| !l.write_allocate()));
        assert_eq!(memory.write_policy(), WritePolicy::WriteThroughNoAllocate);
    }

    #[test]
    fn three_levels_are_accepted() {
        let l3 = CacheConfig::new(8 * 1024 * 1024, 16, 64, ReplacementPolicy::Qlru);
        let memory = MemoryConfig::new(vec![l1(), l2(), l3]).unwrap();
        assert_eq!(memory.depth(), 3);
        assert!(memory.as_single().is_none());
        assert!(memory.to_hierarchy().is_none());
    }

    #[test]
    fn json_round_trip() {
        let memory =
            MemoryConfig::test_system().with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let json = serde_json::to_string(&memory).unwrap();
        let back: MemoryConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, memory);
    }
}
