//! Two-level cache hierarchies.
//!
//! [`HierarchyConfig`] and [`HierarchyState`] predate the N-level
//! [`MemoryConfig`](crate::MemoryConfig)/[`MultiLevelState`] pair and are
//! kept as thin compatibility shims: the state delegates every access to
//! the shared N-level walk, and new code should construct a `MemoryConfig`
//! directly.

use crate::block::{Access, AccessKind, MemBlock};
use crate::cache::{CacheConfig, CacheState, LevelStats};
use crate::multilevel::{walk_access, MultiAccessOutcome, MultiLevelState};

/// Write policy of a cache level.
///
/// Write-back vs. write-through only affects traffic, not hit/miss counts,
/// so the model distinguishes the allocation decision, which does affect
/// misses, and records the write-back choice for documentation purposes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum WritePolicy {
    /// Write-back, write-allocate (the configuration of the test system in
    /// the paper and the PolyCache comparison).
    #[default]
    WriteBackWriteAllocate,
    /// Write-through, no-write-allocate.
    WriteThroughNoAllocate,
}

impl WritePolicy {
    /// Whether write misses allocate a line.
    pub fn allocates_on_write(self) -> bool {
        matches!(self, WritePolicy::WriteBackWriteAllocate)
    }
}

/// Configuration of a two-level non-inclusive non-exclusive hierarchy
/// (the private L1/L2 levels modelled in the paper, Appendix A.2).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct HierarchyConfig {
    /// First-level cache.
    pub l1: CacheConfig,
    /// Second-level cache.
    pub l2: CacheConfig,
    /// Write policy applied at both levels.
    pub write_policy: WritePolicy,
}

impl HierarchyConfig {
    /// A hierarchy with the default write-back write-allocate policy.
    ///
    /// # Panics
    ///
    /// Panics if the two levels have different line sizes (unsupported) or if
    /// the number of L2 sets is not a multiple of the number of L1 sets (the
    /// assumption under which Corollary 5 of the paper applies).
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        assert_eq!(
            l1.line_size(),
            l2.line_size(),
            "L1 and L2 must use the same line size"
        );
        assert_eq!(
            l2.num_sets() % l1.num_sets(),
            0,
            "the number of L2 sets must be a multiple of the number of L1 sets"
        );
        HierarchyConfig {
            l1,
            l2,
            write_policy: WritePolicy::default(),
        }
    }

    /// Sets the write policy, returning `self` for chaining.
    pub fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// The cache line size shared by both levels.
    pub fn line_size(&self) -> u64 {
        self.l1.line_size()
    }

    /// The configuration used throughout the paper's evaluation: the
    /// Cascade Lake test system's private levels — a 32 KiB 8-way PLRU L1
    /// and a 1 MiB 16-way Quad-age-LRU L2, 64-byte lines.
    pub fn test_system() -> Self {
        HierarchyConfig::new(
            CacheConfig::new(32 * 1024, 8, 64, crate::ReplacementPolicy::Plru),
            CacheConfig::new(1024 * 1024, 16, 64, crate::ReplacementPolicy::Qlru),
        )
    }

    /// The configuration of the PolyCache comparison (Fig. 9): 32 KiB 4-way
    /// L1 and 256 KiB 4-way L2, both LRU, write-back write-allocate.
    pub fn polycache_comparison() -> Self {
        HierarchyConfig::new(
            CacheConfig::new(32 * 1024, 4, 64, crate::ReplacementPolicy::Lru),
            CacheConfig::new(256 * 1024, 4, 64, crate::ReplacementPolicy::Lru),
        )
    }
}

/// The result of a hierarchy access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// Whether the access hit in the L1 cache.
    pub l1_hit: bool,
    /// Whether the access hit in the L2 cache; `None` if the L2 was not
    /// accessed (because the L1 hit).
    pub l2_hit: Option<bool>,
}

impl From<MultiAccessOutcome> for AccessOutcome {
    fn from(outcome: MultiAccessOutcome) -> Self {
        AccessOutcome {
            l1_hit: outcome.hit_at(0).unwrap_or(false),
            l2_hit: outcome.hit_at(1),
        }
    }
}

/// The state of a two-level non-inclusive non-exclusive hierarchy, generic
/// over the line payload.
///
/// Compatibility shim over [`MultiLevelState`]: every access delegates to
/// the shared N-level walk.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct HierarchyState<B> {
    inner: MultiLevelState<B>,
}

impl<B: Clone> HierarchyState<B> {
    /// An empty hierarchy with the geometry of `config`.
    pub fn new(config: &HierarchyConfig) -> Self {
        HierarchyState {
            inner: MultiLevelState::from_levels(vec![
                CacheState::new(&config.l1),
                CacheState::new(&config.l2),
            ]),
        }
    }

    /// Assembles a hierarchy state from explicit per-level states.
    pub fn from_levels(l1: CacheState<B>, l2: CacheState<B>) -> Self {
        HierarchyState {
            inner: MultiLevelState::from_levels(vec![l1, l2]),
        }
    }

    /// The L1 state.
    pub fn l1(&self) -> &CacheState<B> {
        self.inner.level(0)
    }

    /// The L2 state.
    pub fn l2(&self) -> &CacheState<B> {
        self.inner.level(1)
    }
}

impl HierarchyState<MemBlock> {
    /// Performs a read access to a block (Equation 24 of the paper):
    /// the L2 is only consulted — and updated — when the L1 misses.
    pub fn access_block(&mut self, config: &HierarchyConfig, block: MemBlock) -> AccessOutcome {
        let configs = [&config.l1, &config.l2];
        walk_access(
            configs.into_iter().zip(self.inner.levels_mut().iter_mut()),
            block,
            true,
        )
        .into()
    }

    /// Performs an access honouring the hierarchy's write policy.
    pub fn access(&mut self, config: &HierarchyConfig, access: Access) -> AccessOutcome {
        let block = config.l1.block_of_address(access.address);
        let fill = access.kind != AccessKind::Write || config.write_policy.allocates_on_write();
        let configs = [&config.l1, &config.l2];
        walk_access(
            configs.into_iter().zip(self.inner.levels_mut().iter_mut()),
            block,
            fill,
        )
        .into()
    }
}

/// Aggregated statistics of a two-level simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HierarchyStats {
    /// L1 counters.
    pub l1: LevelStats,
    /// L2 counters (accesses = L1 misses).
    pub l2: LevelStats,
}

impl HierarchyStats {
    /// Records one access outcome.
    pub fn record(&mut self, outcome: AccessOutcome) {
        self.l1.record(outcome.l1_hit);
        if let Some(l2_hit) = outcome.l2_hit {
            self.l2.record(l2_hit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplacementPolicy;

    fn tiny_hierarchy() -> HierarchyConfig {
        HierarchyConfig::new(
            CacheConfig::with_sets(2, 2, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru),
        )
    }

    #[test]
    fn l2_filters_l1_misses() {
        let config = tiny_hierarchy();
        let mut h = HierarchyState::new(&config);
        let b = MemBlock(0);
        let first = h.access_block(&config, b);
        assert_eq!(
            first,
            AccessOutcome {
                l1_hit: false,
                l2_hit: Some(false)
            }
        );
        let second = h.access_block(&config, b);
        assert_eq!(
            second,
            AccessOutcome {
                l1_hit: true,
                l2_hit: None
            }
        );
    }

    #[test]
    fn non_inclusive_refill_hits_l2() {
        let config = tiny_hierarchy();
        let mut h = HierarchyState::new(&config);
        // Fill L1 set 0 beyond its associativity so block 0 gets evicted from
        // L1 but remains in the larger L2.
        for i in [0u64, 2, 4] {
            h.access_block(&config, MemBlock(i));
        }
        let again = h.access_block(&config, MemBlock(0));
        assert!(!again.l1_hit);
        assert_eq!(again.l2_hit, Some(true));
    }

    #[test]
    fn no_write_allocate_hierarchy() {
        let config = tiny_hierarchy().with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut h = HierarchyState::new(&config);
        let out = h.access(&config, Access::write(0));
        assert!(!out.l1_hit);
        assert_eq!(out.l2_hit, Some(false));
        // Nothing was allocated anywhere.
        let read = h.access(&config, Access::read(0));
        assert!(!read.l1_hit);
        assert_eq!(read.l2_hit, Some(false));
    }

    #[test]
    fn stats_aggregate() {
        let config = tiny_hierarchy();
        let mut h = HierarchyState::new(&config);
        let mut stats = HierarchyStats::default();
        for i in [0u64, 1, 0, 2, 0] {
            stats.record(h.access_block(&config, MemBlock(i)));
        }
        assert_eq!(stats.l1.accesses, 5);
        assert_eq!(stats.l1.misses, 3);
        assert_eq!(stats.l2.accesses, 3);
        assert_eq!(stats.l2.misses, 3);
    }

    #[test]
    fn preset_configurations() {
        let ts = HierarchyConfig::test_system();
        assert_eq!(ts.l1.num_sets(), 64);
        assert_eq!(ts.l2.num_sets(), 1024);
        let pc = HierarchyConfig::polycache_comparison();
        assert_eq!(pc.l1.assoc(), 4);
        assert_eq!(pc.l2.size_bytes(), 256 * 1024);
    }
}
