//! Memory blocks and accesses.

use std::fmt;

/// A memory block: the unit at which caches operate.
///
/// A block is obtained from a byte address by dividing by the cache line
/// size, see [`CacheConfig::block_of_address`](crate::CacheConfig::block_of_address).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemBlock(pub u64);

impl MemBlock {
    /// The block containing byte address `addr` for the given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero.
    pub fn of_address(addr: u64, line_size: u64) -> Self {
        assert!(line_size > 0, "line size must be positive");
        MemBlock(addr / line_size)
    }

    /// The raw block number.
    pub fn id(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for MemBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for MemBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for MemBlock {
    fn from(v: u64) -> Self {
        MemBlock(v)
    }
}

/// Whether a memory access reads or writes.
///
/// The distinction only matters for no-write-allocate caches; write-allocate
/// caches treat reads and writes identically for hit/miss classification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum AccessKind {
    /// A load.
    #[default]
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A single memory access: a byte address and an access kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Access {
    /// Accessed byte address.
    pub address: u64,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// A read access to `address`.
    pub fn read(address: u64) -> Self {
        Access {
            address,
            kind: AccessKind::Read,
        }
    }

    /// A write access to `address`.
    pub fn write(address: u64) -> Self {
        Access {
            address,
            kind: AccessKind::Write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_address_divides_by_line_size() {
        assert_eq!(MemBlock::of_address(0, 64), MemBlock(0));
        assert_eq!(MemBlock::of_address(63, 64), MemBlock(0));
        assert_eq!(MemBlock::of_address(64, 64), MemBlock(1));
        assert_eq!(MemBlock::of_address(1000, 64), MemBlock(15));
    }

    #[test]
    fn access_constructors() {
        assert!(Access::write(4).kind.is_write());
        assert!(!Access::read(4).kind.is_write());
    }
}
