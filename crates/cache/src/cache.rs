//! Set-associative caches with modulo placement.

use crate::block::{Access, AccessKind, MemBlock};
use crate::policy::ReplacementPolicy;
use crate::set::SetState;
use std::fmt;

/// Configuration of a single cache level.
///
/// ```
/// use cache_model::{CacheConfig, ReplacementPolicy};
/// // The test system's L1: 32 KiB, 8-way, 64-byte lines, Pseudo-LRU.
/// let l1 = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru);
/// assert_eq!(l1.num_sets(), 64);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheConfig {
    num_sets: usize,
    assoc: usize,
    line_size: u64,
    policy: ReplacementPolicy,
    write_allocate: bool,
}

impl CacheConfig {
    /// A cache of `size_bytes` total capacity with the given associativity,
    /// line size and replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the size is not an exact multiple of `assoc * line_size`
    /// or any parameter is zero.
    pub fn new(size_bytes: u64, assoc: usize, line_size: u64, policy: ReplacementPolicy) -> Self {
        assert!(
            size_bytes > 0 && assoc > 0 && line_size > 0,
            "cache parameters must be positive"
        );
        let way_bytes = assoc as u64 * line_size;
        assert_eq!(
            size_bytes % way_bytes,
            0,
            "cache size must be a multiple of associativity * line size"
        );
        CacheConfig::with_sets((size_bytes / way_bytes) as usize, assoc, line_size, policy)
    }

    /// A cache described directly by its number of sets.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn with_sets(
        num_sets: usize,
        assoc: usize,
        line_size: u64,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(
            num_sets > 0 && assoc > 0 && line_size > 0,
            "cache parameters must be positive"
        );
        CacheConfig {
            num_sets,
            assoc,
            line_size,
            policy,
            write_allocate: true,
        }
    }

    /// A fully-associative cache with `num_lines` lines.
    pub fn fully_associative(num_lines: usize, line_size: u64, policy: ReplacementPolicy) -> Self {
        CacheConfig::with_sets(1, num_lines, line_size, policy)
    }

    /// Disables write allocation: write misses do not fill the cache.
    pub fn no_write_allocate(mut self) -> Self {
        self.write_allocate = false;
        self
    }

    /// Sets the write-allocation flag explicitly (used to normalize a
    /// level against a hierarchy-wide write policy).
    pub fn with_write_allocate(mut self, allocate: bool) -> Self {
        self.write_allocate = allocate;
        self
    }

    /// Number of cache sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity of each set.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Cache line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// The replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Whether write misses allocate a line.
    pub fn write_allocate(&self) -> bool {
        self.write_allocate
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_sets as u64 * self.assoc as u64 * self.line_size
    }

    /// The memory block containing byte address `addr`.
    pub fn block_of_address(&self, addr: u64) -> MemBlock {
        MemBlock::of_address(addr, self.line_size)
    }

    /// The cache set a block maps to (modulo placement, §2.2 of the paper).
    pub fn index(&self, block: MemBlock) -> usize {
        (block.0 % self.num_sets as u64) as usize
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB {}-way, {}-byte lines, {}",
            self.size_bytes() / 1024,
            self.assoc,
            self.line_size,
            self.policy
        )
    }
}

/// Hit/miss counters of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LevelStats {
    /// Number of accesses that reached this level.
    pub accesses: u64,
    /// Number of hits at this level.
    pub hits: u64,
    /// Number of misses at this level.
    pub misses: u64,
}

impl LevelStats {
    /// Records one access.
    pub fn record(&mut self, hit: bool) {
        self.accesses += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Merges the counters of another statistics record into this one.
    pub fn merge(&mut self, other: &LevelStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Miss ratio (0 if there were no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The state of a set-associative cache, generic over the line payload.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheState<B> {
    sets: Vec<SetState<B>>,
}

impl<B: Clone> CacheState<B> {
    /// An empty cache with the geometry of `config`.
    pub fn new(config: &CacheConfig) -> Self {
        CacheState {
            sets: (0..config.num_sets())
                .map(|_| SetState::new(config.policy(), config.assoc()))
                .collect(),
        }
    }

    /// Number of cache sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The state of cache set `idx`.
    pub fn set(&self, idx: usize) -> &SetState<B> {
        &self.sets[idx]
    }

    /// Mutable access to cache set `idx`.
    pub fn set_mut(&mut self, idx: usize) -> &mut SetState<B> {
        &mut self.sets[idx]
    }

    /// All cache sets.
    pub fn sets(&self) -> &[SetState<B>] {
        &self.sets
    }

    /// Indices of the sets holding at least one line.  For kernels whose
    /// working set touches few sets of a large cache this is the only part
    /// of the state worth encoding or digesting; empty sets are guaranteed
    /// to still carry their initial replacement-policy state (lines are
    /// replaced, never removed, so a set that was ever touched stays
    /// occupied).
    pub fn occupied_set_indices(&self) -> Vec<usize> {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// Applies a function to every payload, preserving geometry and policy
    /// state.
    pub fn map_payloads<C>(&self, mut f: impl FnMut(&B) -> C) -> CacheState<C> {
        CacheState {
            sets: self.sets.iter().map(|s| s.map_payloads(&mut f)).collect(),
        }
    }

    /// Permutes the cache sets: set `i` of the result is set `perm(i)` of
    /// `self`.  Used to apply index bijections (Equation 5 of the paper).
    pub fn permute_sets(&self, perm: impl Fn(usize) -> usize) -> CacheState<B> {
        CacheState {
            sets: (0..self.sets.len())
                .map(|i| self.sets[perm(i)].clone())
                .collect(),
        }
    }
}

impl CacheState<MemBlock> {
    /// Classifies and performs a read access to a memory block
    /// (`ClCache` followed by `UpCache`).  Returns `true` for a hit.
    pub fn access_block(&mut self, config: &CacheConfig, block: MemBlock) -> bool {
        let idx = config.index(block);
        self.sets[idx].access(config.policy(), block)
    }

    /// Classifies a block without updating the state (`ClCache`).
    pub fn classify_block(&self, config: &CacheConfig, block: MemBlock) -> bool {
        self.sets[config.index(block)].classify(&block)
    }

    /// Classifies and performs an access, honouring the write-allocation
    /// policy: on a write miss to a no-write-allocate cache the block is not
    /// inserted.  Returns `true` for a hit.
    pub fn access(&mut self, config: &CacheConfig, access: Access) -> bool {
        let block = config.block_of_address(access.address);
        let idx = config.index(block);
        let set = &mut self.sets[idx];
        match set.find(|b| *b == block) {
            Some(line) => {
                set.on_hit(config.policy(), line);
                true
            }
            None => {
                if access.kind != AccessKind::Write || config.write_allocate() {
                    set.on_miss_insert(config.policy(), block);
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Lru);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.size_bytes(), 32 * 1024);
        assert_eq!(c.index(MemBlock(64)), 0);
        assert_eq!(c.index(MemBlock(65)), 1);
        assert_eq!(c.block_of_address(128), MemBlock(2));
    }

    #[test]
    fn running_example_first_iteration() {
        // Figure 1 of the paper: fully-associative, 2 lines, LRU; iteration 1
        // accesses A[0], A[1], B[0] — three misses — leaving {A[1], B[0]}.
        let config = CacheConfig::fully_associative(2, 1, ReplacementPolicy::Lru);
        let mut cache = CacheState::new(&config);
        let a = |i: u64| MemBlock(i);
        let b = |i: u64| MemBlock(1000 + i);
        assert!(!cache.access_block(&config, a(0)));
        assert!(!cache.access_block(&config, a(1)));
        assert!(!cache.access_block(&config, b(0)));
        // Iteration 2: A[1] hits, A[2] and B[1] miss.
        assert!(cache.access_block(&config, a(1)));
        assert!(!cache.access_block(&config, a(2)));
        assert!(!cache.access_block(&config, b(1)));
    }

    #[test]
    fn no_write_allocate_skips_fill() {
        let config =
            CacheConfig::fully_associative(2, 64, ReplacementPolicy::Lru).no_write_allocate();
        let mut cache = CacheState::new(&config);
        assert!(!cache.access(&config, Access::write(0)));
        // The write miss did not allocate, so a read to the same block misses.
        assert!(!cache.access(&config, Access::read(0)));
        // The read allocated; now it hits.
        assert!(cache.access(&config, Access::read(0)));
    }

    #[test]
    fn stats_record_and_merge() {
        let mut a = LevelStats::default();
        a.record(true);
        a.record(false);
        let mut b = LevelStats::default();
        b.record(false);
        a.merge(&b);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 2);
        assert!((a.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn permute_sets_rotation() {
        let config = CacheConfig::with_sets(4, 1, 1, ReplacementPolicy::Lru);
        let mut cache = CacheState::new(&config);
        cache.access_block(&config, MemBlock(0));
        cache.access_block(&config, MemBlock(1));
        // Rotate by one: new set i holds what old set (i + 1) mod 4 held.
        let rotated = cache.permute_sets(|i| (i + 1) % 4);
        assert_eq!(rotated.set(0).lines()[0], Some(MemBlock(1)));
        assert_eq!(rotated.set(3).lines()[0], Some(MemBlock(0)));
    }
}
