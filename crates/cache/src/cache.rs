//! Set-associative caches with modulo placement.

use crate::block::{Access, AccessKind, MemBlock};
use crate::policy::ReplacementPolicy;
use crate::set::SetState;
use std::collections::BTreeMap;
use std::fmt;

/// Configuration of a single cache level.
///
/// ```
/// use cache_model::{CacheConfig, ReplacementPolicy};
/// // The test system's L1: 32 KiB, 8-way, 64-byte lines, Pseudo-LRU.
/// let l1 = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru);
/// assert_eq!(l1.num_sets(), 64);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheConfig {
    num_sets: usize,
    assoc: usize,
    line_size: u64,
    policy: ReplacementPolicy,
    write_allocate: bool,
}

impl CacheConfig {
    /// A cache of `size_bytes` total capacity with the given associativity,
    /// line size and replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the size is not an exact multiple of `assoc * line_size`
    /// or any parameter is zero.
    pub fn new(size_bytes: u64, assoc: usize, line_size: u64, policy: ReplacementPolicy) -> Self {
        assert!(
            size_bytes > 0 && assoc > 0 && line_size > 0,
            "cache parameters must be positive"
        );
        let way_bytes = assoc as u64 * line_size;
        assert_eq!(
            size_bytes % way_bytes,
            0,
            "cache size must be a multiple of associativity * line size"
        );
        CacheConfig::with_sets((size_bytes / way_bytes) as usize, assoc, line_size, policy)
    }

    /// A cache described directly by its number of sets.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn with_sets(
        num_sets: usize,
        assoc: usize,
        line_size: u64,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(
            num_sets > 0 && assoc > 0 && line_size > 0,
            "cache parameters must be positive"
        );
        CacheConfig {
            num_sets,
            assoc,
            line_size,
            policy,
            write_allocate: true,
        }
    }

    /// A fully-associative cache with `num_lines` lines.
    pub fn fully_associative(num_lines: usize, line_size: u64, policy: ReplacementPolicy) -> Self {
        CacheConfig::with_sets(1, num_lines, line_size, policy)
    }

    /// Disables write allocation: write misses do not fill the cache.
    pub fn no_write_allocate(mut self) -> Self {
        self.write_allocate = false;
        self
    }

    /// Sets the write-allocation flag explicitly (used to normalize a
    /// level against a hierarchy-wide write policy).
    pub fn with_write_allocate(mut self, allocate: bool) -> Self {
        self.write_allocate = allocate;
        self
    }

    /// Number of cache sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity of each set.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Cache line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// The replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Whether write misses allocate a line.
    pub fn write_allocate(&self) -> bool {
        self.write_allocate
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_sets as u64 * self.assoc as u64 * self.line_size
    }

    /// The memory block containing byte address `addr`.
    pub fn block_of_address(&self, addr: u64) -> MemBlock {
        MemBlock::of_address(addr, self.line_size)
    }

    /// The cache set a block maps to (modulo placement, §2.2 of the paper).
    pub fn index(&self, block: MemBlock) -> usize {
        (block.0 % self.num_sets as u64) as usize
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.size_bytes();
        // Print the size in the largest unit that divides it exactly; a
        // sub-KiB (or non-KiB-multiple) cache prints plain bytes instead of
        // the old truncated-to-zero "0 KiB".
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * 1024;
        if bytes.is_multiple_of(MIB) {
            write!(f, "{} MiB", bytes / MIB)?;
        } else if bytes.is_multiple_of(KIB) {
            write!(f, "{} KiB", bytes / KIB)?;
        } else {
            write!(f, "{bytes} B")?;
        }
        write!(
            f,
            " {}-way, {}-byte lines, {}",
            self.assoc, self.line_size, self.policy
        )
    }
}

/// Hit/miss counters of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LevelStats {
    /// Number of accesses that reached this level.
    pub accesses: u64,
    /// Number of hits at this level.
    pub hits: u64,
    /// Number of misses at this level.
    pub misses: u64,
}

impl LevelStats {
    /// Records one access.
    pub fn record(&mut self, hit: bool) {
        self.accesses += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Records `n` accesses with the same outcome at once — the batched
    /// counterpart of [`LevelStats::record`] used when a run of accesses
    /// to one cache line is collapsed arithmetically.
    pub fn record_n(&mut self, hit: bool, n: u64) {
        self.accesses += n;
        if hit {
            self.hits += n;
        } else {
            self.misses += n;
        }
    }

    /// Merges the counters of another statistics record into this one.
    pub fn merge(&mut self, other: &LevelStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Miss ratio (0 if there were no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The state of a set-associative cache, generic over the line payload.
///
/// # Sparse representation
///
/// The state stores only the *touched* sets, in a sorted map, next to one
/// shared empty-set template for the geometry.  Lines are replaced but never
/// removed, so a set outside the map is guaranteed to be in its initial
/// state — empty lines *and* initial replacement-policy metadata — and the
/// template answers for it.  Consequences:
///
/// * construction is O(1) regardless of the number of sets (a 64 MiB level
///   costs the same as a 256 KiB one),
/// * [`clone`](Clone::clone), [`CacheState::map_payloads`] and
///   [`CacheState::rotate_sets`] are O(occupied sets),
/// * memory is proportional to the working set, not the cache capacity.
///
/// Equality and hashing ignore *how* a state was touched: a set that was
/// touched but left empty (e.g. by a no-write-allocate write miss through
/// [`CacheState::set_mut`]) compares equal to one that was never touched.
/// They also ignore the [level epoch](CacheState::epoch), which — like the
/// per-set [content version](SetState::content_version) — is bookkeeping
/// about *when* the state was last written, not content.
///
/// # The level epoch
///
/// Consumers that store logical timestamps in their payloads (the warping
/// simulator labels every line with the iteration vector that loaded it)
/// need a per-level reference point to compare those timestamps against:
/// a line that stopped being touched keeps a frozen label, and comparing
/// frozen labels against a *global* clock makes physically identical states
/// look different.  The state therefore carries a **level-local epoch** —
/// an iteration vector stamped by the caller on every payload write (fill
/// or hit promotion) via [`CacheState::stamp_epoch`] — relative to which
/// per-line labels can be renormalised.  The epoch is carried through
/// [`clone`](Clone::clone), [`CacheState::map_payloads`],
/// [`CacheState::rotate_sets`] and [`CacheState::permute_sets`], survives
/// [`CacheState::take_entries`] (which drains the sets, not the clock), and
/// can be advanced wholesale with [`CacheState::shift_epoch`] when every
/// payload timestamp moves uniformly (a warp).
#[derive(Clone, Debug)]
pub struct CacheState<B> {
    num_sets: usize,
    /// The shared empty-set template: every set outside `occupied` is in
    /// exactly this state.
    template: SetState<B>,
    /// Touched sets, keyed by set index (sorted).
    occupied: BTreeMap<usize, SetState<B>>,
    /// The level-local epoch: iteration stamp of the most recent payload
    /// write.  Empty until the first [`CacheState::stamp_epoch`].
    epoch: Vec<i64>,
}

impl<B: PartialEq> PartialEq for CacheState<B> {
    fn eq(&self, other: &Self) -> bool {
        // Touched-but-empty sets equal the template, so only the non-empty
        // entries discriminate (plus the geometry itself).
        self.num_sets == other.num_sets
            && self.template == other.template
            && self
                .occupied
                .iter()
                .filter(|(_, s)| !s.is_empty())
                .eq(other.occupied.iter().filter(|(_, s)| !s.is_empty()))
    }
}

impl<B: Eq> Eq for CacheState<B> {}

impl<B: std::hash::Hash> std::hash::Hash for CacheState<B> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.num_sets.hash(state);
        self.template.hash(state);
        for (idx, set) in self.occupied.iter().filter(|(_, s)| !s.is_empty()) {
            idx.hash(state);
            set.hash(state);
        }
    }
}

impl<B: Clone> CacheState<B> {
    /// An empty cache with the geometry of `config`.  O(1): no per-set
    /// allocation happens until a set is touched.
    pub fn new(config: &CacheConfig) -> Self {
        CacheState {
            num_sets: config.num_sets(),
            template: SetState::new(config.policy(), config.assoc()),
            occupied: BTreeMap::new(),
            epoch: Vec::new(),
        }
    }

    /// The level-local epoch: the iteration stamp of the most recent
    /// [`CacheState::stamp_epoch`], empty if the state was never stamped
    /// (or was stamped with an empty vector).  See the type-level
    /// documentation for what the epoch is for.
    pub fn epoch(&self) -> &[i64] {
        &self.epoch
    }

    /// Records `iter` as the level's epoch.  Callers that timestamp their
    /// payloads invoke this on every payload write (fill or hit promotion),
    /// so the epoch always names the last access that touched the level.
    pub fn stamp_epoch(&mut self, iter: &[i64]) {
        self.epoch.clear();
        self.epoch.extend_from_slice(iter);
    }

    /// Advances the epoch by `delta` along dimension `dim`, mirroring a
    /// uniform shift of every payload timestamp (warp application).  A
    /// no-op when the epoch does not extend to `dim` — a state whose last
    /// write predates the shifted loop keeps its (frozen) stamp.
    pub fn shift_epoch(&mut self, dim: usize, delta: i64) {
        if let Some(v) = self.epoch.get_mut(dim) {
            *v += delta;
        }
    }

    /// Number of cache sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// The state of cache set `idx`.  An untouched set answers with the
    /// shared empty template.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set(&self, idx: usize) -> &SetState<B> {
        assert!(idx < self.num_sets, "set index out of range");
        self.occupied.get(&idx).unwrap_or(&self.template)
    }

    /// Mutable access to cache set `idx`.  This marks the set as touched:
    /// an untouched set is materialised from the empty template first.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_mut(&mut self, idx: usize) -> &mut SetState<B> {
        assert!(idx < self.num_sets, "set index out of range");
        let template = &self.template;
        self.occupied.entry(idx).or_insert_with(|| template.clone())
    }

    /// Replaces the state of cache set `idx` wholesale (marking it
    /// touched).  Used by the warping simulator to land transformed sets on
    /// their rotated positions without materialising a template first.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn insert_set(&mut self, idx: usize, set: SetState<B>) {
        assert!(idx < self.num_sets, "set index out of range");
        self.occupied.insert(idx, set);
    }

    /// Removes and returns every touched set as `(index, set)` pairs in
    /// ascending index order, leaving the state empty.  O(occupied); the
    /// building block of warp application, which moves all occupied sets to
    /// rotated positions at once.
    pub fn take_entries(&mut self) -> Vec<(usize, SetState<B>)> {
        std::mem::take(&mut self.occupied).into_iter().collect()
    }

    /// All cache sets as `(index, set)` pairs, including untouched ones
    /// (which answer with the shared empty template).  O(total sets) when
    /// consumed fully — prefer [`CacheState::occupied_entries`] wherever
    /// the empty sets carry no information.
    pub fn sets(&self) -> impl Iterator<Item = (usize, &SetState<B>)> + '_ {
        (0..self.num_sets).map(move |i| (i, self.set(i)))
    }

    /// Borrowing iterator over the indices of the sets holding at least one
    /// line, in ascending order.  O(occupied), no allocation.  For kernels
    /// whose working set touches few sets of a large cache this is the only
    /// part of the state worth encoding or digesting; every other set is
    /// guaranteed to still carry its initial replacement-policy state
    /// (lines are replaced, never removed, so a set that ever held a line
    /// stays occupied).
    pub fn occupied_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.occupied
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(&i, _)| i)
    }

    /// Borrowing iterator over `(index, set)` for the sets holding at least
    /// one line, in ascending index order.  O(occupied), no allocation.
    pub fn occupied_entries(&self) -> impl Iterator<Item = (usize, &SetState<B>)> + '_ {
        self.occupied
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(&i, s)| (i, s))
    }

    /// Number of sets holding at least one line.  O(occupied).
    pub fn occupied_len(&self) -> usize {
        self.occupied_indices().count()
    }

    /// Applies a function to every payload, preserving geometry, policy
    /// state and the level epoch.  O(occupied sets).
    pub fn map_payloads<C>(&self, mut f: impl FnMut(&B) -> C) -> CacheState<C> {
        CacheState {
            num_sets: self.num_sets,
            template: self.template.map_payloads(&mut f),
            occupied: self
                .occupied
                .iter()
                .map(|(&i, s)| (i, s.map_payloads(&mut f)))
                .collect(),
            epoch: self.epoch.clone(),
        }
    }

    /// Rotates the cache sets by `offset` positions: set `i` of `self` ends
    /// up at set `(i + offset) mod num_sets` of the result.  This is the
    /// set bijection a block shift induces (Equation 5 of the paper) and
    /// costs O(occupied sets): only touched entries move.
    pub fn rotate_sets(&self, offset: i64) -> CacheState<B> {
        let n = self.num_sets as i64;
        CacheState {
            num_sets: self.num_sets,
            template: self.template.clone(),
            occupied: self
                .occupied
                .iter()
                .map(|(&i, s)| (((i as i64 + offset).rem_euclid(n)) as usize, s.clone()))
                .collect(),
            epoch: self.epoch.clone(),
        }
    }

    /// Permutes the cache sets: set `i` of the result is set `perm(i)` of
    /// `self`.  Only the occupied sets are cloned, but `perm` is evaluated
    /// for every index (a general permutation cannot be inverted without
    /// enumerating it) — for the rotation case use the O(occupied)
    /// [`CacheState::rotate_sets`] instead.
    pub fn permute_sets(&self, perm: impl Fn(usize) -> usize) -> CacheState<B> {
        let mut occupied = BTreeMap::new();
        if !self.occupied.is_empty() {
            for new in 0..self.num_sets {
                if let Some(set) = self.occupied.get(&perm(new)) {
                    occupied.insert(new, set.clone());
                }
            }
        }
        CacheState {
            num_sets: self.num_sets,
            template: self.template.clone(),
            occupied,
            epoch: self.epoch.clone(),
        }
    }
}

impl CacheState<MemBlock> {
    /// Classifies and performs a read access to a memory block
    /// (`ClCache` followed by `UpCache`).  Returns `true` for a hit.
    pub fn access_block(&mut self, config: &CacheConfig, block: MemBlock) -> bool {
        // A read always fills on a miss, so touching the set is warranted
        // either way.
        let idx = config.index(block);
        self.set_mut(idx).access(config.policy(), block)
    }

    /// Classifies a block without updating the state (`ClCache`).
    pub fn classify_block(&self, config: &CacheConfig, block: MemBlock) -> bool {
        self.set(config.index(block)).classify(&block)
    }

    /// Classifies and performs an access, honouring the write-allocation
    /// policy: on a write miss to a no-write-allocate cache the block is not
    /// inserted.  Returns `true` for a hit.
    pub fn access(&mut self, config: &CacheConfig, access: Access) -> bool {
        let block = config.block_of_address(access.address);
        let idx = config.index(block);
        let fill = access.kind != AccessKind::Write || config.write_allocate();
        // Look the set up without touching it first: a write miss that does
        // not allocate must leave an untouched set untouched.
        let Some(set) = self.occupied.get_mut(&idx) else {
            if fill {
                self.set_mut(idx).on_miss_insert(config.policy(), block);
            }
            return false;
        };
        match set.find(|b| *b == block) {
            Some(line) => {
                set.on_hit(config.policy(), line);
                true
            }
            None => {
                if fill {
                    set.on_miss_insert(config.policy(), block);
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Lru);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.size_bytes(), 32 * 1024);
        assert_eq!(c.index(MemBlock(64)), 0);
        assert_eq!(c.index(MemBlock(65)), 1);
        assert_eq!(c.block_of_address(128), MemBlock(2));
    }

    #[test]
    fn display_picks_the_exact_unit() {
        let fmt = |size: u64, assoc: usize, line: u64| {
            CacheConfig::new(size, assoc, line, ReplacementPolicy::Lru).to_string()
        };
        // Below 1 KiB: plain bytes, not the old truncated "0 KiB".
        assert!(fmt(512, 4, 8).starts_with("512 B "), "{}", fmt(512, 4, 8));
        assert!(fmt(16, 2, 8).starts_with("16 B "));
        // Exact KiB and MiB multiples.
        assert!(fmt(32 * 1024, 8, 64).starts_with("32 KiB "));
        assert!(fmt(64 * 1024 * 1024, 16, 64).starts_with("64 MiB "));
        // A KiB multiple that is not a MiB multiple stays in KiB.
        assert!(fmt(1536 * 1024, 4, 64).starts_with("1536 KiB "));
        // Not a whole number of KiB: bytes again.
        let odd = CacheConfig::with_sets(3, 2, 8, ReplacementPolicy::Lru);
        assert!(odd.to_string().starts_with("48 B "), "{odd}");
    }

    #[test]
    fn running_example_first_iteration() {
        // Figure 1 of the paper: fully-associative, 2 lines, LRU; iteration 1
        // accesses A[0], A[1], B[0] — three misses — leaving {A[1], B[0]}.
        let config = CacheConfig::fully_associative(2, 1, ReplacementPolicy::Lru);
        let mut cache = CacheState::new(&config);
        let a = |i: u64| MemBlock(i);
        let b = |i: u64| MemBlock(1000 + i);
        assert!(!cache.access_block(&config, a(0)));
        assert!(!cache.access_block(&config, a(1)));
        assert!(!cache.access_block(&config, b(0)));
        // Iteration 2: A[1] hits, A[2] and B[1] miss.
        assert!(cache.access_block(&config, a(1)));
        assert!(!cache.access_block(&config, a(2)));
        assert!(!cache.access_block(&config, b(1)));
    }

    #[test]
    fn no_write_allocate_skips_fill() {
        let config =
            CacheConfig::fully_associative(2, 64, ReplacementPolicy::Lru).no_write_allocate();
        let mut cache = CacheState::new(&config);
        assert!(!cache.access(&config, Access::write(0)));
        // The write miss did not allocate — not even a touched-set entry.
        assert_eq!(cache.occupied_len(), 0);
        assert!(!cache.access(&config, Access::read(0)));
        // The read allocated; now it hits.
        assert!(cache.access(&config, Access::read(0)));
    }

    #[test]
    fn stats_record_and_merge() {
        let mut a = LevelStats::default();
        a.record(true);
        a.record(false);
        let mut b = LevelStats::default();
        b.record(false);
        a.merge(&b);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 2);
        assert!((a.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn permute_sets_rotation() {
        let config = CacheConfig::with_sets(4, 1, 1, ReplacementPolicy::Lru);
        let mut cache = CacheState::new(&config);
        cache.access_block(&config, MemBlock(0));
        cache.access_block(&config, MemBlock(1));
        // Rotate by one: new set i holds what old set (i + 1) mod 4 held.
        let rotated = cache.permute_sets(|i| (i + 1) % 4);
        assert_eq!(rotated.set(0).lines()[0], Some(MemBlock(1)));
        assert_eq!(rotated.set(3).lines()[0], Some(MemBlock(0)));
        // rotate_sets(-1) is the same bijection, computed sparsely.
        assert_eq!(rotated, cache.rotate_sets(-1));
    }

    #[test]
    fn construction_is_sparse_and_sets_answer_with_the_template() {
        // A "64 MiB" geometry: construction must not allocate per set.
        let config = CacheConfig::new(64 * 1024 * 1024, 16, 64, ReplacementPolicy::Plru);
        let mut cache: CacheState<MemBlock> = CacheState::new(&config);
        assert_eq!(cache.num_sets(), 65536);
        assert_eq!(cache.occupied_len(), 0);
        assert!(cache.set(12345).is_empty());
        cache.access_block(&config, MemBlock(7));
        assert_eq!(cache.occupied_indices().collect::<Vec<_>>(), vec![7]);
        let (idx, set) = cache.occupied_entries().next().unwrap();
        assert_eq!(idx, 7);
        assert_eq!(set.lines()[0], Some(MemBlock(7)));
    }

    #[test]
    fn touched_but_empty_sets_do_not_break_equality() {
        let config = CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru).no_write_allocate();
        let mut touched = CacheState::new(&config);
        // Materialise set 2 without ever filling it.
        let _ = touched.set_mut(2);
        let fresh: CacheState<MemBlock> = CacheState::new(&config);
        assert_eq!(touched, fresh);
        assert_eq!(touched.occupied_len(), 0);
        let hash = |state: &CacheState<MemBlock>| {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            state.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(hash(&touched), hash(&fresh));
    }

    #[test]
    fn take_entries_drains_and_insert_set_lands() {
        let config = CacheConfig::with_sets(4, 1, 1, ReplacementPolicy::Lru);
        let mut cache = CacheState::new(&config);
        cache.access_block(&config, MemBlock(1));
        cache.access_block(&config, MemBlock(2));
        let entries = cache.take_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(cache.occupied_len(), 0);
        for (idx, set) in entries {
            cache.insert_set((idx + 1) % 4, set);
        }
        assert_eq!(cache.occupied_indices().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(cache.set(2).lines()[0], Some(MemBlock(1)));
    }

    #[test]
    fn epoch_is_stamped_shifted_carried_and_ignored_by_eq() {
        let config = CacheConfig::with_sets(4, 1, 1, ReplacementPolicy::Lru);
        let mut cache: CacheState<MemBlock> = CacheState::new(&config);
        assert!(cache.epoch().is_empty(), "fresh states carry no stamp");
        cache.access_block(&config, MemBlock(1));
        cache.stamp_epoch(&[3, 7]);
        assert_eq!(cache.epoch(), &[3, 7]);
        cache.shift_epoch(1, 5);
        assert_eq!(cache.epoch(), &[3, 12]);
        // Shifting a dimension beyond the stamp is a no-op (frozen stamp).
        cache.shift_epoch(2, 100);
        assert_eq!(cache.epoch(), &[3, 12]);
        // Carried through the sparse-store transformations ...
        assert_eq!(cache.rotate_sets(1).epoch(), &[3, 12]);
        assert_eq!(cache.permute_sets(|i| i).epoch(), &[3, 12]);
        assert_eq!(cache.map_payloads(|b| b.0).epoch(), &[3, 12]);
        assert_eq!(cache.clone().epoch(), &[3, 12]);
        // ... surviving a drain (the epoch is a clock, not content) ...
        let mut drained = cache.clone();
        let _ = drained.take_entries();
        assert_eq!(drained.epoch(), &[3, 12]);
        // ... and ignored by equality and hashing, like set versions.
        let mut other = cache.clone();
        other.stamp_epoch(&[99]);
        assert_eq!(cache, other);
        let hash = |state: &CacheState<MemBlock>| {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            state.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(hash(&cache), hash(&other));
    }
}
