//! Replacement policies.
//!
//! All policies implemented here satisfy the data-independence property
//! (Property 1 of the paper): their decisions depend only on the *positions*
//! of hits and on policy metadata, never on the identity of the cached
//! memory blocks.  This is what makes cache warping sound.

use std::fmt;

/// A cache replacement policy.
///
/// The update logic lives in [`SetState`](crate::SetState); this enum selects
/// which logic is used and how the per-set [`PolicyState`] is initialised.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReplacementPolicy {
    /// Least-recently-used.  Encoded in the order of the cache lines
    /// (index 0 is most recently used), no extra policy state.
    Lru,
    /// First-in first-out.  Encoded in the order of the cache lines
    /// (index 0 is last-in), no extra policy state; hits do not update state.
    Fifo,
    /// Tree-based Pseudo-LRU as found in the L1 caches of recent Intel
    /// microarchitectures.  Requires a power-of-two associativity.
    Plru,
    /// Quad-age LRU, modelled as static re-reference interval prediction
    /// (SRRIP-HP) with 2-bit ages: blocks are inserted with age 2, promoted
    /// to age 0 on a hit, and the victim is a block of age 3 (ageing all
    /// blocks until one reaches age 3).  This is the scan- and
    /// thrash-resistant policy used in the L2/L3 caches of recent Intel
    /// microarchitectures.
    Qlru,
}

impl ReplacementPolicy {
    /// All policies supported by the simulator, in the order used by the
    /// paper's figures.
    pub const ALL: [ReplacementPolicy; 4] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Plru,
        ReplacementPolicy::Qlru,
    ];

    /// The initial per-set policy state for a set of the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if the policy is [`ReplacementPolicy::Plru`] and `assoc` is not
    /// a power of two, or if `assoc` is zero.
    pub fn initial_state(self, assoc: usize) -> PolicyState {
        assert!(assoc > 0, "associativity must be positive");
        match self {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => PolicyState::None,
            ReplacementPolicy::Plru => {
                assert!(
                    assoc.is_power_of_two(),
                    "PLRU requires a power-of-two associativity, got {assoc}"
                );
                PolicyState::PlruBits(vec![false; assoc.saturating_sub(1)])
            }
            ReplacementPolicy::Qlru => PolicyState::Ages(vec![3; assoc]),
        }
    }

    /// A short, human-readable name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Plru => "Pseudo-LRU",
            ReplacementPolicy::Qlru => "Quad-age LRU",
        }
    }
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Policy metadata of a single cache set.
///
/// The metadata refers to cache lines by position only; it never contains
/// memory blocks, which is what makes the model data independent.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PolicyState {
    /// No extra state (LRU, FIFO: the state is the line order).
    None,
    /// Tree bits of tree-based Pseudo-LRU; entry 0 is the root and the
    /// children of node `i` are `2i + 1` and `2i + 2`.  A bit value of
    /// `false` means the pseudo-LRU victim is in the left subtree.
    PlruBits(Vec<bool>),
    /// Per-line re-reference ages (0 = re-use expected soonest, 3 = victim).
    Ages(Vec<u8>),
}

impl PolicyState {
    /// True if this is [`PolicyState::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, PolicyState::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_states() {
        assert_eq!(ReplacementPolicy::Lru.initial_state(4), PolicyState::None);
        assert_eq!(ReplacementPolicy::Fifo.initial_state(4), PolicyState::None);
        assert_eq!(
            ReplacementPolicy::Plru.initial_state(4),
            PolicyState::PlruBits(vec![false; 3])
        );
        assert_eq!(
            ReplacementPolicy::Qlru.initial_state(2),
            PolicyState::Ages(vec![3, 3])
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two() {
        let _ = ReplacementPolicy::Plru.initial_state(3);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ReplacementPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
