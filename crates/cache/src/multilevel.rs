//! The N-level cache state: one inclusive access/classify path shared by
//! every simulator.
//!
//! [`MultiLevelState`] generalizes the old `CacheState` vs. `HierarchyState`
//! dual: an ordered list of per-level states (L1 first) driven by a
//! [`MemoryConfig`].  On a miss at level `i` the access is forwarded to
//! level `i + 1`; the hierarchy-wide write policy decides whether write
//! misses allocate.  `HierarchyState` remains as a thin compatibility shim
//! delegating to this type.

use crate::block::{Access, AccessKind, MemBlock};
use crate::cache::{CacheState, LevelStats};
use crate::memory::MemoryConfig;

/// The outcome of an access walking an N-level hierarchy from the L1
/// downwards: the access consulted levels `0..levels_consulted` and either
/// hit at the deepest consulted level or missed everywhere.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MultiAccessOutcome {
    /// Number of levels the access reached (at least 1).
    pub levels_consulted: usize,
    /// Whether the deepest consulted level hit.  `false` means the access
    /// missed at every consulted level (which is then every level).
    pub hit: bool,
}

impl MultiAccessOutcome {
    /// Whether level `idx` was consulted and hit.  `None` if the access
    /// never reached that level (an enclosing level hit first).
    pub fn hit_at(&self, idx: usize) -> Option<bool> {
        if idx + 1 < self.levels_consulted {
            Some(false)
        } else if idx + 1 == self.levels_consulted {
            Some(self.hit)
        } else {
            None
        }
    }

    /// Folds the outcome into per-level counters (`stats[i]` is level `i`).
    pub fn record_into(&self, stats: &mut [LevelStats]) {
        for (idx, level) in stats.iter_mut().enumerate().take(self.levels_consulted) {
            level.record(self.hit && idx + 1 == self.levels_consulted);
        }
    }
}

/// Walks one access from the L1 outwards over `(config, state)` pairs: each
/// level is consulted until one hits.  With `fill == false` (a write under
/// no-write-allocate) a missing block is classified without being inserted,
/// while a present block is still accessed so the replacement-policy state
/// advances.
///
/// This is the single inclusive access path behind [`MultiLevelState`] and
/// the legacy `HierarchyState` shim.
pub(crate) fn walk_access<'a, I>(levels: I, block: MemBlock, fill: bool) -> MultiAccessOutcome
where
    I: Iterator<Item = (&'a crate::cache::CacheConfig, &'a mut CacheState<MemBlock>)>,
{
    let mut consulted = 0;
    let mut hit = false;
    for (config, state) in levels {
        consulted += 1;
        hit = if fill {
            state.access_block(config, block)
        } else {
            state.classify_block(config, block) && state.access_block(config, block)
        };
        if hit {
            break;
        }
    }
    MultiAccessOutcome {
        levels_consulted: consulted,
        hit,
    }
}

/// The state of an N-level non-inclusive non-exclusive hierarchy, generic
/// over the line payload.  Level 0 is the L1.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MultiLevelState<B> {
    levels: Vec<CacheState<B>>,
}

impl<B: Clone> MultiLevelState<B> {
    /// An empty hierarchy with the geometry of `config`.  O(depth), not
    /// O(total sets): each level is a sparse [`CacheState`] that allocates
    /// nothing until a set is touched.
    pub fn new(config: &MemoryConfig) -> Self {
        MultiLevelState {
            levels: config.levels().iter().map(CacheState::new).collect(),
        }
    }

    /// Assembles a state from per-level cache states (L1 first).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn from_levels(levels: Vec<CacheState<B>>) -> Self {
        assert!(!levels.is_empty(), "a hierarchy needs at least one level");
        MultiLevelState { levels }
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The per-level states, L1 first.
    pub fn levels(&self) -> &[CacheState<B>] {
        &self.levels
    }

    /// The state of level `idx` (0 is the L1).
    pub fn level(&self, idx: usize) -> &CacheState<B> {
        &self.levels[idx]
    }

    /// Mutable access to the state of level `idx`.
    pub fn level_mut(&mut self, idx: usize) -> &mut CacheState<B> {
        &mut self.levels[idx]
    }

    /// Mutable access to all per-level states, L1 first.
    pub fn levels_mut(&mut self) -> &mut [CacheState<B>] {
        &mut self.levels
    }
}

impl MultiLevelState<MemBlock> {
    /// Performs a read access to a block (Equation 24 of the paper,
    /// generalized to N levels): level `i + 1` is only consulted — and
    /// updated — when level `i` misses.
    pub fn access_block(&mut self, config: &MemoryConfig, block: MemBlock) -> MultiAccessOutcome {
        walk_access(
            config.levels().iter().zip(self.levels.iter_mut()),
            block,
            true,
        )
    }

    /// Performs an access honouring the hierarchy-wide write policy: under
    /// no-write-allocate, a write is classified at each level without
    /// filling, and forwarded outward on a miss.
    pub fn access(&mut self, config: &MemoryConfig, access: Access) -> MultiAccessOutcome {
        let block = config.l1().block_of_address(access.address);
        let fill = access.kind != AccessKind::Write || config.write_policy().allocates_on_write();
        walk_access(
            config.levels().iter().zip(self.levels.iter_mut()),
            block,
            fill,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::hierarchy::WritePolicy;
    use crate::ReplacementPolicy;

    fn tiny_three_level() -> MemoryConfig {
        MemoryConfig::new(vec![
            CacheConfig::with_sets(2, 2, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(8, 4, 64, ReplacementPolicy::Lru),
        ])
        .unwrap()
    }

    #[test]
    fn outer_levels_filter_inner_misses() {
        let config = tiny_three_level();
        let mut state = MultiLevelState::new(&config);
        let first = state.access_block(&config, MemBlock(0));
        assert_eq!(first.levels_consulted, 3);
        assert!(!first.hit);
        assert_eq!(first.hit_at(0), Some(false));
        assert_eq!(first.hit_at(2), Some(false));
        let second = state.access_block(&config, MemBlock(0));
        assert_eq!(second.levels_consulted, 1);
        assert!(second.hit);
        assert_eq!(second.hit_at(1), None);
    }

    #[test]
    fn eviction_from_l1_hits_the_l2() {
        let config = tiny_three_level();
        let mut state = MultiLevelState::new(&config);
        // Fill L1 set 0 beyond its associativity: block 0 is evicted from
        // the L1 but survives in the larger L2.
        for b in [0u64, 2, 4] {
            state.access_block(&config, MemBlock(b));
        }
        let again = state.access_block(&config, MemBlock(0));
        assert_eq!(again.levels_consulted, 2);
        assert!(again.hit);
    }

    #[test]
    fn no_write_allocate_does_not_fill_any_level() {
        let config = tiny_three_level().with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut state = MultiLevelState::new(&config);
        let write = state.access(&config, Access::write(0));
        assert_eq!(write.levels_consulted, 3);
        assert!(!write.hit);
        let read = state.access(&config, Access::read(0));
        assert!(!read.hit, "nothing was allocated anywhere");
    }

    #[test]
    fn record_into_charges_only_consulted_levels() {
        let config = tiny_three_level();
        let mut state = MultiLevelState::new(&config);
        let mut stats = vec![LevelStats::default(); 3];
        state
            .access_block(&config, MemBlock(0))
            .record_into(&mut stats);
        state
            .access_block(&config, MemBlock(0))
            .record_into(&mut stats);
        assert_eq!(stats[0].accesses, 2);
        assert_eq!(stats[0].hits, 1);
        assert_eq!(stats[1].accesses, 1);
        assert_eq!(stats[1].misses, 1);
        assert_eq!(stats[2].accesses, 1);
    }
}
