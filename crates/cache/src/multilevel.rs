//! The N-level cache state: one inclusive access/classify path shared by
//! every simulator.
//!
//! [`MultiLevelState`] generalizes the old `CacheState` vs. `HierarchyState`
//! dual: an ordered list of per-level states (L1 first) driven by a
//! [`MemoryConfig`].  On a miss at level `i` the access is forwarded to
//! level `i + 1`; the hierarchy-wide write policy decides whether write
//! misses allocate.  `HierarchyState` remains as a thin compatibility shim
//! delegating to this type.

use crate::block::{Access, AccessKind, MemBlock};
use crate::cache::{CacheState, LevelStats};
use crate::memory::MemoryConfig;

/// The outcome of an access walking an N-level hierarchy from the L1
/// downwards: the access consulted levels `0..levels_consulted` and either
/// hit at the deepest consulted level or missed everywhere.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MultiAccessOutcome {
    /// Number of levels the access reached (at least 1).
    pub levels_consulted: usize,
    /// Whether the deepest consulted level hit.  `false` means the access
    /// missed at every consulted level (which is then every level).
    pub hit: bool,
}

impl MultiAccessOutcome {
    /// Whether level `idx` was consulted and hit.  `None` if the access
    /// never reached that level (an enclosing level hit first).
    pub fn hit_at(&self, idx: usize) -> Option<bool> {
        if idx + 1 < self.levels_consulted {
            Some(false)
        } else if idx + 1 == self.levels_consulted {
            Some(self.hit)
        } else {
            None
        }
    }

    /// Folds the outcome into per-level counters (`stats[i]` is level `i`).
    pub fn record_into(&self, stats: &mut [LevelStats]) {
        for (idx, level) in stats.iter_mut().enumerate().take(self.levels_consulted) {
            level.record(self.hit && idx + 1 == self.levels_consulted);
        }
    }
}

/// Walks one access from the L1 outwards over `(config, state)` pairs: each
/// level is consulted until one hits.  With `fill == false` (a write under
/// no-write-allocate) a missing block is classified without being inserted,
/// while a present block is still accessed so the replacement-policy state
/// advances.
///
/// This is the single inclusive access path behind [`MultiLevelState`] and
/// the legacy `HierarchyState` shim.
pub(crate) fn walk_access<'a, I>(levels: I, block: MemBlock, fill: bool) -> MultiAccessOutcome
where
    I: Iterator<Item = (&'a crate::cache::CacheConfig, &'a mut CacheState<MemBlock>)>,
{
    let mut consulted = 0;
    let mut hit = false;
    for (config, state) in levels {
        consulted += 1;
        hit = if fill {
            state.access_block(config, block)
        } else {
            state.classify_block(config, block) && state.access_block(config, block)
        };
        if hit {
            break;
        }
    }
    MultiAccessOutcome {
        levels_consulted: consulted,
        hit,
    }
}

/// The state of an N-level non-inclusive non-exclusive hierarchy, generic
/// over the line payload.  Level 0 is the L1.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MultiLevelState<B> {
    levels: Vec<CacheState<B>>,
}

impl<B: Clone> MultiLevelState<B> {
    /// An empty hierarchy with the geometry of `config`.  O(depth), not
    /// O(total sets): each level is a sparse [`CacheState`] that allocates
    /// nothing until a set is touched.
    pub fn new(config: &MemoryConfig) -> Self {
        MultiLevelState {
            levels: config.levels().iter().map(CacheState::new).collect(),
        }
    }

    /// Assembles a state from per-level cache states (L1 first).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn from_levels(levels: Vec<CacheState<B>>) -> Self {
        assert!(!levels.is_empty(), "a hierarchy needs at least one level");
        MultiLevelState { levels }
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The per-level states, L1 first.
    pub fn levels(&self) -> &[CacheState<B>] {
        &self.levels
    }

    /// The state of level `idx` (0 is the L1).
    pub fn level(&self, idx: usize) -> &CacheState<B> {
        &self.levels[idx]
    }

    /// Mutable access to the state of level `idx`.
    pub fn level_mut(&mut self, idx: usize) -> &mut CacheState<B> {
        &mut self.levels[idx]
    }

    /// Mutable access to all per-level states, L1 first.
    pub fn levels_mut(&mut self) -> &mut [CacheState<B>] {
        &mut self.levels
    }
}

impl MultiLevelState<MemBlock> {
    /// Performs a read access to a block (Equation 24 of the paper,
    /// generalized to N levels): level `i + 1` is only consulted — and
    /// updated — when level `i` misses.
    pub fn access_block(&mut self, config: &MemoryConfig, block: MemBlock) -> MultiAccessOutcome {
        walk_access(
            config.levels().iter().zip(self.levels.iter_mut()),
            block,
            true,
        )
    }

    /// Performs an access honouring the hierarchy-wide write policy: under
    /// no-write-allocate, a write is classified at each level without
    /// filling, and forwarded outward on a miss.
    pub fn access(&mut self, config: &MemoryConfig, access: Access) -> MultiAccessOutcome {
        let block = config.l1().block_of_address(access.address);
        let fill = access.kind != AccessKind::Write || config.write_policy().allocates_on_write();
        walk_access(
            config.levels().iter().zip(self.levels.iter_mut()),
            block,
            fill,
        )
    }

    /// Performs an access like [`MultiLevelState::access`] and additionally
    /// stamps `stamp` into the epoch of every level whose payload (or
    /// replacement-policy state) was written: under an allocating walk all
    /// consulted levels are written (filled on a miss, promoted on a hit);
    /// under no-write-allocate only a hitting level advances.  Levels the
    /// access never reached keep their previous epoch, so a snapshot can
    /// later tell live levels from frozen ones.
    pub fn access_stamped(
        &mut self,
        config: &MemoryConfig,
        access: Access,
        stamp: i64,
    ) -> MultiAccessOutcome {
        let fill = access.kind != AccessKind::Write || config.write_policy().allocates_on_write();
        let outcome = self.access(config, access);
        if fill {
            for level in self.levels.iter_mut().take(outcome.levels_consulted) {
                level.stamp_epoch(&[stamp]);
            }
        } else if outcome.hit {
            self.levels[outcome.levels_consulted - 1].stamp_epoch(&[stamp]);
        }
        outcome
    }

    /// Performs a run of `count` accesses starting at `base` with a
    /// constant byte `stride`, recording per-level counters into `stats`
    /// (`stats[i]` is level `i`).
    ///
    /// The run is split into maximal groups of consecutive accesses that
    /// share a cache line (addresses are monotone, so a line never
    /// recurs once left).  Within a group only the first two accesses
    /// are performed against the state: after an access and a repeat of
    /// the same block, a further identical access changes neither the
    /// replacement-policy state (the block is the promotion target
    /// already) nor the contents, for every supported policy and both
    /// fill paths.  The remaining `k - 2` accesses replicate the second
    /// outcome arithmetically — one fill plus `k − 1` hit-promotes
    /// collapse into two state updates and a counter bump.
    ///
    /// The result is bit-identical to calling [`MultiLevelState::access`]
    /// `count` times (the differential suites assert this).
    pub fn access_run(
        &mut self,
        config: &MemoryConfig,
        base: u64,
        stride: i64,
        count: u64,
        kind: AccessKind,
        stats: &mut [LevelStats],
    ) {
        self.run_impl(config, base, stride, count, kind, None, stats);
    }

    /// The epoch-stamping counterpart of [`MultiLevelState::access_run`]:
    /// every performed access stamps like
    /// [`MultiLevelState::access_stamped`].  A run carries one stamp, so
    /// the collapsed replays (which would re-stamp the same value) are
    /// idempotent and the resulting epochs are bit-identical to the
    /// unbatched walk.
    #[allow(clippy::too_many_arguments)]
    pub fn access_run_stamped(
        &mut self,
        config: &MemoryConfig,
        base: u64,
        stride: i64,
        count: u64,
        kind: AccessKind,
        stamp: i64,
        stats: &mut [LevelStats],
    ) {
        self.run_impl(config, base, stride, count, kind, Some(stamp), stats);
    }

    #[allow(clippy::too_many_arguments)]
    fn run_impl(
        &mut self,
        config: &MemoryConfig,
        base: u64,
        stride: i64,
        count: u64,
        kind: AccessKind,
        stamp: Option<i64>,
        stats: &mut [LevelStats],
    ) {
        let line = config.l1().line_size() as i64;
        let fill = kind != AccessKind::Write || config.write_policy().allocates_on_write();
        let mut addr = base as i64;
        let mut remaining = count;
        while remaining > 0 {
            // Size of the group of consecutive accesses on addr's line.
            let group = if stride == 0 {
                remaining
            } else {
                let line_base = addr.div_euclid(line) * line;
                let span = if stride > 0 {
                    // Accesses before the address reaches the next line.
                    let gap = line_base + line - addr;
                    (gap + stride - 1) / stride
                } else {
                    // Accesses before the address drops below the line.
                    (addr - line_base) / -stride + 1
                };
                remaining.min(span as u64)
            };
            let block = config.l1().block_of_address(addr as u64);
            let mut outcome = MultiAccessOutcome {
                levels_consulted: 0,
                hit: false,
            };
            for _ in 0..group.min(2) {
                outcome = walk_access(
                    config.levels().iter().zip(self.levels.iter_mut()),
                    block,
                    fill,
                );
                outcome.record_into(stats);
                if let Some(stamp) = stamp {
                    if fill {
                        for level in self.levels.iter_mut().take(outcome.levels_consulted) {
                            level.stamp_epoch(&[stamp]);
                        }
                    } else if outcome.hit {
                        self.levels[outcome.levels_consulted - 1].stamp_epoch(&[stamp]);
                    }
                }
            }
            // The state is now a fixed point for this block: replicate
            // the last outcome for the rest of the group.
            if group > 2 {
                let tail = group - 2;
                for (idx, level) in stats.iter_mut().enumerate().take(outcome.levels_consulted) {
                    level.record_n(outcome.hit && idx + 1 == outcome.levels_consulted, tail);
                }
            }
            addr += stride * group as i64;
            remaining -= group;
        }
    }
}

/// An epoch-aware snapshot of a [`MultiLevelState`].
///
/// A snapshot captures the full hierarchy state plus, per level, the epoch
/// stamp of the last payload write (as maintained by
/// [`MultiLevelState::access_stamped`]).  Interval samplers use the epochs
/// to decide, on resumption, which levels are *live* (written recently
/// enough that skipping ahead leaves them wrong — they need a warm-up
/// prefix) and which are *stale* (untouched since before the skipped
/// region — safe to carry forward unchanged, exactly the frozen-level
/// argument of relative-label addressing).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StateSnapshot<B> {
    levels: Vec<CacheState<B>>,
}

impl<B: Clone> StateSnapshot<B> {
    /// Captures the current state of `state`, epochs included.
    pub fn capture(state: &MultiLevelState<B>) -> Self {
        StateSnapshot {
            levels: state.levels.clone(),
        }
    }

    /// Number of captured levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The scalar epoch of level `idx`: the stamp of its last payload
    /// write, or `i64::MIN` if the level was never stamped.
    pub fn level_epoch(&self, idx: usize) -> i64 {
        self.levels[idx]
            .epoch()
            .first()
            .copied()
            .unwrap_or(i64::MIN)
    }

    /// Indices of levels whose last payload write predates `horizon` —
    /// the levels provably unaffected by anything that happened at or
    /// after that stamp.
    pub fn stale_levels(&self, horizon: i64) -> Vec<usize> {
        (0..self.levels.len())
            .filter(|&idx| self.level_epoch(idx) < horizon)
            .collect()
    }

    /// Whether every captured level is stale relative to `horizon`.
    pub fn all_stale(&self, horizon: i64) -> bool {
        self.stale_levels(horizon).len() == self.levels.len()
    }

    /// Reconstructs a [`MultiLevelState`] from the snapshot.
    pub fn restore(&self) -> MultiLevelState<B> {
        MultiLevelState {
            levels: self.levels.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::hierarchy::WritePolicy;
    use crate::ReplacementPolicy;

    fn tiny_three_level() -> MemoryConfig {
        MemoryConfig::new(vec![
            CacheConfig::with_sets(2, 2, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(8, 4, 64, ReplacementPolicy::Lru),
        ])
        .unwrap()
    }

    #[test]
    fn outer_levels_filter_inner_misses() {
        let config = tiny_three_level();
        let mut state = MultiLevelState::new(&config);
        let first = state.access_block(&config, MemBlock(0));
        assert_eq!(first.levels_consulted, 3);
        assert!(!first.hit);
        assert_eq!(first.hit_at(0), Some(false));
        assert_eq!(first.hit_at(2), Some(false));
        let second = state.access_block(&config, MemBlock(0));
        assert_eq!(second.levels_consulted, 1);
        assert!(second.hit);
        assert_eq!(second.hit_at(1), None);
    }

    #[test]
    fn eviction_from_l1_hits_the_l2() {
        let config = tiny_three_level();
        let mut state = MultiLevelState::new(&config);
        // Fill L1 set 0 beyond its associativity: block 0 is evicted from
        // the L1 but survives in the larger L2.
        for b in [0u64, 2, 4] {
            state.access_block(&config, MemBlock(b));
        }
        let again = state.access_block(&config, MemBlock(0));
        assert_eq!(again.levels_consulted, 2);
        assert!(again.hit);
    }

    #[test]
    fn no_write_allocate_does_not_fill_any_level() {
        let config = tiny_three_level().with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut state = MultiLevelState::new(&config);
        let write = state.access(&config, Access::write(0));
        assert_eq!(write.levels_consulted, 3);
        assert!(!write.hit);
        let read = state.access(&config, Access::read(0));
        assert!(!read.hit, "nothing was allocated anywhere");
    }

    #[test]
    fn access_stamped_marks_only_written_levels() {
        let config = tiny_three_level();
        let mut state = MultiLevelState::new(&config);
        // A cold miss consults (and fills) every level: all stamped.
        state.access_stamped(&config, Access::read(0), 7);
        let snap = StateSnapshot::capture(&state);
        assert_eq!(snap.level_epoch(0), 7);
        assert_eq!(snap.level_epoch(1), 7);
        assert_eq!(snap.level_epoch(2), 7);
        // An L1 hit touches only the L1: outer levels keep their stamp.
        state.access_stamped(&config, Access::read(0), 9);
        let snap = StateSnapshot::capture(&state);
        assert_eq!(snap.level_epoch(0), 9);
        assert_eq!(snap.level_epoch(1), 7);
        assert_eq!(snap.stale_levels(8), vec![1, 2]);
        assert!(!snap.all_stale(8));
        assert!(snap.all_stale(10));
    }

    #[test]
    fn no_write_allocate_miss_stamps_nothing() {
        let config = tiny_three_level().with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut state = MultiLevelState::new(&config);
        state.access_stamped(&config, Access::write(0), 3);
        let snap = StateSnapshot::capture(&state);
        assert_eq!(snap.level_epoch(0), i64::MIN, "nothing was written");
        // After a read allocates, a write hit stamps the hitting level only.
        state.access_stamped(&config, Access::read(0), 4);
        state.access_stamped(&config, Access::write(0), 5);
        let snap = StateSnapshot::capture(&state);
        assert_eq!(snap.level_epoch(0), 5);
        assert_eq!(snap.level_epoch(1), 4);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let config = tiny_three_level();
        let mut state = MultiLevelState::new(&config);
        for b in [0u64, 2, 4, 0, 6] {
            state.access_stamped(&config, Access::read(b * 64), b as i64);
        }
        let snap = StateSnapshot::capture(&state);
        let restored = snap.restore();
        assert_eq!(restored, state);
        // The restored copy diverges independently of the original.
        let mut forked = snap.restore();
        forked.access_block(&config, MemBlock(99));
        assert_ne!(forked, state);
        assert_eq!(snap.restore(), state, "snapshot itself is unchanged");
    }

    #[test]
    fn access_run_is_bit_identical_to_single_accesses() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Plru,
            ReplacementPolicy::Qlru,
        ] {
            let config = MemoryConfig::new(vec![
                CacheConfig::with_sets(2, 2, 64, policy),
                CacheConfig::with_sets(4, 2, 64, policy),
            ])
            .unwrap();
            for write_policy in [
                WritePolicy::WriteBackWriteAllocate,
                WritePolicy::WriteThroughNoAllocate,
            ] {
                let config = config.clone().with_write_policy(write_policy);
                // (base, stride, count): sub-line forward, line-sized,
                // line-skipping, sub-line backward, and zero strides.
                let runs = [
                    (0u64, 8i64, 40u64, AccessKind::Read),
                    (512, 64, 16, AccessKind::Write),
                    (64, 200, 10, AccessKind::Read),
                    (4096, -8, 33, AccessKind::Write),
                    (128, 0, 9, AccessKind::Read),
                    (60, 8, 3, AccessKind::Read), // straddles a line boundary
                ];
                let mut batched = MultiLevelState::new(&config);
                let mut unbatched = MultiLevelState::new(&config);
                let mut batched_stats = vec![LevelStats::default(); 2];
                let mut unbatched_stats = vec![LevelStats::default(); 2];
                for (base, stride, count, kind) in runs {
                    batched.access_run_stamped(
                        &config,
                        base,
                        stride,
                        count,
                        kind,
                        7,
                        &mut batched_stats,
                    );
                    for k in 0..count {
                        let address = (base as i64 + k as i64 * stride) as u64;
                        unbatched
                            .access_stamped(&config, Access { address, kind }, 7)
                            .record_into(&mut unbatched_stats);
                    }
                }
                assert_eq!(batched, unbatched, "{policy:?} {write_policy:?}");
                assert_eq!(
                    batched_stats, unbatched_stats,
                    "{policy:?} {write_policy:?}"
                );
            }
        }
    }

    #[test]
    fn record_into_charges_only_consulted_levels() {
        let config = tiny_three_level();
        let mut state = MultiLevelState::new(&config);
        let mut stats = vec![LevelStats::default(); 3];
        state
            .access_block(&config, MemBlock(0))
            .record_into(&mut stats);
        state
            .access_block(&config, MemBlock(0))
            .record_into(&mut stats);
        assert_eq!(stats[0].accesses, 2);
        assert_eq!(stats[0].hits, 1);
        assert_eq!(stats[1].accesses, 1);
        assert_eq!(stats[1].misses, 1);
        assert_eq!(stats[2].accesses, 1);
    }
}
