//! Cache models for warping cache simulation.
//!
//! This crate implements the cache-architecture substrate of the paper
//! *Warping Cache Simulation of Polyhedral Programs* (Morelli & Reineke,
//! PLDI 2022):
//!
//! * memory blocks and accesses ([`MemBlock`], [`Access`], [`AccessKind`]),
//! * replacement policies satisfying the data-independence property
//!   (Property 1): [`ReplacementPolicy::Lru`], [`ReplacementPolicy::Fifo`],
//!   [`ReplacementPolicy::Plru`] and [`ReplacementPolicy::Qlru`],
//! * individual cache sets ([`SetState`]), set-associative caches with modulo
//!   placement ([`CacheConfig`], [`CacheState`] — a sparse store of the
//!   touched sets plus one shared empty-set template, so construction is
//!   O(1) and clone/rotation cost O(occupied sets)),
//! * the depth-N memory system: [`MemoryConfig`] describes any number of
//!   non-inclusive non-exclusive cache levels (with write-allocate and
//!   no-write-allocate write policies, conversions from [`CacheConfig`] and
//!   [`HierarchyConfig`], and JSON (de)serialization) and
//!   [`MultiLevelState`] simulates them through one inclusive access path
//!   shared by every simulator ([`HierarchyConfig`]/[`HierarchyState`]
//!   remain as thin two-level compatibility shims),
//! * block bijections and rotations ([`bijection`]) used to state and test
//!   the data-independence theorems.
//!
//! Cache states are generic over the line payload `B` so that the warping
//! simulator can reuse the exact same update logic for *symbolic* cache
//! states (payloads carrying both a concrete block and a symbolic label).
//!
//! # Example
//!
//! ```
//! use cache_model::{CacheConfig, CacheState, ReplacementPolicy, MemBlock};
//!
//! // The running example of the paper: 4 sets, associativity 2, LRU.
//! let config = CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru);
//! let mut cache = CacheState::new(&config);
//! let a = MemBlock(0);
//! assert!(!cache.access_block(&config, a)); // cold miss
//! assert!(cache.access_block(&config, a));  // hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bijection;
mod block;
mod cache;
mod hierarchy;
mod memory;
mod multilevel;
mod policy;
mod set;

pub use block::{Access, AccessKind, MemBlock};
pub use cache::{CacheConfig, CacheState, LevelStats};
pub use hierarchy::{AccessOutcome, HierarchyConfig, HierarchyState, HierarchyStats, WritePolicy};
pub use memory::{MemoryConfig, MemoryConfigError};
pub use multilevel::{MultiAccessOutcome, MultiLevelState, StateSnapshot};
pub use policy::{PolicyState, ReplacementPolicy};
pub use set::SetState;
