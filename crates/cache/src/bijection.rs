//! Block bijections and the data-independence property.
//!
//! This module provides the machinery used to state (and test) Property 1,
//! Theorem 1 and Corollary 5 of the paper: bijections on memory blocks that
//! preserve the partition into cache sets, the cache-set bijections they
//! induce, and their application to cache states.

use crate::block::MemBlock;
use crate::cache::{CacheConfig, CacheState};
use crate::hierarchy::{HierarchyConfig, HierarchyState};
use crate::multilevel::MultiLevelState;

/// A bijection on memory blocks given by a shift: `π(b) = b + delta`.
///
/// Shift bijections always preserve the partition of blocks into cache sets
/// (they are members of `Π_index=` in the paper's notation) and induce the
/// set rotation `π_Set(s) = (s + delta) mod num_sets`, which is exactly the
/// class of matches the warping simulator looks for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShiftBijection {
    /// The shift applied to every block number.
    pub delta: i64,
}

impl ShiftBijection {
    /// A new shift bijection.
    pub fn new(delta: i64) -> Self {
        ShiftBijection { delta }
    }

    /// Applies the bijection to a block.
    ///
    /// # Panics
    ///
    /// Panics if the shifted block number would be negative.
    pub fn apply(&self, block: MemBlock) -> MemBlock {
        let shifted = block.0 as i64 + self.delta;
        assert!(shifted >= 0, "shifted block number must be non-negative");
        MemBlock(shifted as u64)
    }

    /// The induced rotation of cache-set indices for a cache with `num_sets`
    /// sets: `π_Set(s) = (s + delta) mod num_sets`.
    pub fn set_rotation(&self, num_sets: usize) -> i64 {
        self.delta.rem_euclid(num_sets as i64)
    }

    /// Applies the bijection to a whole cache state (Equation 5):
    /// `π(c) = λ s. π(c(π_Set⁻¹(s)))`.  O(occupied sets): the induced set
    /// bijection is a rotation, which the sparse state applies natively.
    pub fn apply_to_cache(
        &self,
        config: &CacheConfig,
        state: &CacheState<MemBlock>,
    ) -> CacheState<MemBlock> {
        let rot = self.set_rotation(config.num_sets());
        state.rotate_sets(rot).map_payloads(|b| self.apply(*b))
    }

    /// Applies the bijection to a two-level hierarchy state.
    pub fn apply_to_hierarchy(
        &self,
        config: &HierarchyConfig,
        state: &HierarchyState<MemBlock>,
    ) -> HierarchyState<MemBlock> {
        HierarchyState::from_levels(
            self.apply_to_cache(&config.l1, state.l1()),
            self.apply_to_cache(&config.l2, state.l2()),
        )
    }

    /// Applies the bijection to an N-level state (Corollary 5 generalized):
    /// every level is renamed with the same block bijection.
    ///
    /// # Panics
    ///
    /// Panics if the configuration and the state disagree on the number of
    /// levels.
    pub fn apply_to_levels(
        &self,
        config: &crate::MemoryConfig,
        state: &MultiLevelState<MemBlock>,
    ) -> MultiLevelState<MemBlock> {
        assert_eq!(
            config.depth(),
            state.depth(),
            "the configuration and the state must have the same number of levels"
        );
        MultiLevelState::from_levels(
            config
                .levels()
                .iter()
                .zip(state.levels())
                .map(|(level, cache)| self.apply_to_cache(level, cache))
                .collect(),
        )
    }
}

/// Rotates a set index by `offset` positions: `(index + offset) mod num_sets`.
pub fn rotate_index(index: usize, offset: i64, num_sets: usize) -> usize {
    (index as i64 + offset).rem_euclid(num_sets as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplacementPolicy;

    #[test]
    fn shift_preserves_index_partition() {
        let config = CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru);
        let pi = ShiftBijection::new(3);
        for b in 0..32u64 {
            for b2 in 0..32u64 {
                let same_before = config.index(MemBlock(b)) == config.index(MemBlock(b2));
                let same_after =
                    config.index(pi.apply(MemBlock(b))) == config.index(pi.apply(MemBlock(b2)));
                assert_eq!(same_before, same_after);
            }
        }
    }

    #[test]
    fn rotate_index_wraps() {
        assert_eq!(rotate_index(3, 1, 4), 0);
        assert_eq!(rotate_index(0, -1, 4), 3);
        assert_eq!(rotate_index(2, 6, 4), 0);
    }

    /// Theorem 1 on a concrete example: updating then renaming equals
    /// renaming then updating with the renamed block.
    #[test]
    fn data_independence_example() {
        let config = CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru);
        let pi = ShiftBijection::new(1);
        let mut c = CacheState::new(&config);
        for b in [0u64, 1, 4, 5, 2] {
            c.access_block(&config, MemBlock(b));
        }
        let b = MemBlock(6);
        // π(UpCache(c, b))
        let mut updated = c.clone();
        updated.access_block(&config, b);
        let lhs = pi.apply_to_cache(&config, &updated);
        // UpCache(π(c), π(b))
        let mut rhs = pi.apply_to_cache(&config, &c);
        rhs.access_block(&config, pi.apply(b));
        assert_eq!(lhs, rhs);
    }
}
