//! Individual cache sets.

use crate::policy::{PolicyState, ReplacementPolicy};

/// The state of a single cache set of associativity `k`, generic over the
/// line payload `B`.
///
/// For concrete simulation the payload is a [`MemBlock`](crate::MemBlock);
/// the warping simulator instead stores payloads that carry both a concrete
/// block and a symbolic label, reusing the exact same update logic.
///
/// For LRU and FIFO the replacement state is encoded in the order of the
/// lines (index 0 holds the most-recently-used / last-in block); PLRU and
/// Quad-age LRU keep lines at stable positions and use the [`PolicyState`].
///
/// Every mutation bumps a [content version](SetState::content_version)
/// counter, so incremental consumers (e.g. the warping simulator's set
/// digests) can detect stale derived data without re-reading the lines.
/// The version is bookkeeping, not content: it is ignored by `PartialEq`
/// and `Hash`.
///
/// ```
/// use cache_model::{ReplacementPolicy, SetState};
/// let mut set = SetState::new(ReplacementPolicy::Lru, 2);
/// assert!(!set.access(ReplacementPolicy::Lru, 'a'));
/// assert!(!set.access(ReplacementPolicy::Lru, 'b'));
/// assert!(set.access(ReplacementPolicy::Lru, 'a'));
/// assert!(!set.access(ReplacementPolicy::Lru, 'c')); // evicts 'b'
/// assert!(!set.access(ReplacementPolicy::Lru, 'b'));
/// ```
#[derive(Clone, Eq, Debug)]
pub struct SetState<B> {
    lines: Vec<Option<B>>,
    policy_state: PolicyState,
    version: u64,
}

impl<B: PartialEq> PartialEq for SetState<B> {
    fn eq(&self, other: &Self) -> bool {
        // The version counter is mutation bookkeeping, not content.
        self.lines == other.lines && self.policy_state == other.policy_state
    }
}

impl<B: std::hash::Hash> std::hash::Hash for SetState<B> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.lines.hash(state);
        self.policy_state.hash(state);
    }
}

impl<B> SetState<B> {
    /// The associativity of the set.
    pub fn assoc(&self) -> usize {
        self.lines.len()
    }

    /// The cache lines, in the internal (policy-dependent) order.
    pub fn lines(&self) -> &[Option<B>] {
        &self.lines
    }

    /// The policy metadata of the set.
    pub fn policy_state(&self) -> &PolicyState {
        &self.policy_state
    }

    /// The number of occupied lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }

    /// Whether every line of the set is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.iter().all(Option::is_none)
    }

    /// A counter that increases on every mutation of the set (hit updates,
    /// miss fills and in-place payload edits through [`SetState::line_mut`]).
    ///
    /// Consumers that cache data derived from the set's content — such as
    /// the warping simulator's per-set digests — compare versions instead of
    /// line arrays to decide whether their cache is stale.  Clones inherit
    /// the version; [`SetState::map_payloads`] resets it, since the result is
    /// a fresh set.
    pub fn content_version(&self) -> u64 {
        self.version
    }

    /// Finds the line whose payload satisfies `pred`.
    pub fn find(&self, mut pred: impl FnMut(&B) -> bool) -> Option<usize> {
        self.lines
            .iter()
            .position(|l| l.as_ref().is_some_and(&mut pred))
    }

    /// Mutable access to the payload of line `idx`, if it is occupied.
    ///
    /// Mutating the payload does not affect the replacement state; this is
    /// used by the warping simulator to refresh symbolic labels in place.
    /// Counts as a mutation for [`SetState::content_version`].
    pub fn line_mut(&mut self, idx: usize) -> Option<&mut B> {
        self.version += 1;
        self.lines[idx].as_mut()
    }
}

impl<B: Clone> SetState<B> {
    /// An empty cache set of the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is zero, or if the policy is PLRU and `assoc` is not
    /// a power of two.
    pub fn new(policy: ReplacementPolicy, assoc: usize) -> Self {
        SetState {
            lines: vec![None; assoc],
            policy_state: policy.initial_state(assoc),
            version: 0,
        }
    }

    /// Applies a function to every payload, keeping positions and policy
    /// state.  Used to concretise symbolic states and to apply bijections.
    pub fn map_payloads<C>(&self, mut f: impl FnMut(&B) -> C) -> SetState<C> {
        SetState {
            lines: self.lines.iter().map(|l| l.as_ref().map(&mut f)).collect(),
            policy_state: self.policy_state.clone(),
            version: 0,
        }
    }

    /// Records a hit on line `idx` and updates the replacement state.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the line is empty.
    pub fn on_hit(&mut self, policy: ReplacementPolicy, idx: usize) {
        assert!(self.lines[idx].is_some(), "hit on an empty line");
        self.version += 1;
        match policy {
            ReplacementPolicy::Lru => {
                // Move the hit line to the front, shifting the younger ones.
                let hit = self.lines.remove(idx);
                self.lines.insert(0, hit);
            }
            ReplacementPolicy::Fifo => {
                // FIFO does not update state on hits.
            }
            ReplacementPolicy::Plru => {
                let PolicyState::PlruBits(bits) = &mut self.policy_state else {
                    unreachable!("PLRU set without tree bits");
                };
                plru_touch(bits, self.lines.len(), idx);
            }
            ReplacementPolicy::Qlru => {
                let PolicyState::Ages(ages) = &mut self.policy_state else {
                    unreachable!("QLRU set without ages");
                };
                ages[idx] = 0;
            }
        }
    }

    /// Inserts `payload` after a miss, evicting and returning the victim's
    /// payload if the set was full.  Returns `(line, evicted)` where `line`
    /// is the position at which the payload now resides.
    pub fn on_miss_insert(&mut self, policy: ReplacementPolicy, payload: B) -> (usize, Option<B>) {
        self.version += 1;
        match policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                let evicted = self.lines.pop().expect("associativity is positive").clone();
                self.lines.insert(0, Some(payload));
                (0, evicted)
            }
            ReplacementPolicy::Plru => {
                let PolicyState::PlruBits(bits) = &mut self.policy_state else {
                    unreachable!("PLRU set without tree bits");
                };
                let victim = match self.lines.iter().position(|l| l.is_none()) {
                    Some(empty) => empty,
                    None => plru_victim(bits, self.lines.len()),
                };
                let evicted = self.lines[victim].replace(payload);
                plru_touch(bits, self.lines.len(), victim);
                (victim, evicted)
            }
            ReplacementPolicy::Qlru => {
                let PolicyState::Ages(ages) = &mut self.policy_state else {
                    unreachable!("QLRU set without ages");
                };
                let victim = match self.lines.iter().position(|l| l.is_none()) {
                    Some(empty) => empty,
                    None => loop {
                        if let Some(v) = ages.iter().position(|&a| a >= 3) {
                            break v;
                        }
                        for a in ages.iter_mut() {
                            *a = a.saturating_add(1);
                        }
                    },
                };
                let evicted = self.lines[victim].replace(payload);
                ages[victim] = 2;
                (victim, evicted)
            }
        }
    }
}

impl<B: Clone + PartialEq> SetState<B> {
    /// Classifies an access to `payload` (hit or miss) and updates the set.
    ///
    /// Returns `true` for a hit.  On a miss the payload is inserted
    /// (write-allocate semantics); use [`SetState::classify`] followed by
    /// [`SetState::on_hit`] for no-write-allocate behaviour.
    pub fn access(&mut self, policy: ReplacementPolicy, payload: B) -> bool {
        match self.find(|b| *b == payload) {
            Some(idx) => {
                self.on_hit(policy, idx);
                true
            }
            None => {
                self.on_miss_insert(policy, payload);
                false
            }
        }
    }

    /// Whether `payload` currently resides in the set (no state update).
    pub fn classify(&self, payload: &B) -> bool {
        self.find(|b| b == payload).is_some()
    }
}

/// Updates PLRU tree bits so that they point away from the accessed line.
fn plru_touch(bits: &mut [bool], assoc: usize, line: usize) {
    if assoc <= 1 {
        return;
    }
    // The tree has `assoc - 1` internal nodes; leaves are the lines.  Walk
    // from the root to the leaf and flip each bit to point away from the
    // taken direction.
    let levels = assoc.trailing_zeros();
    let mut node = 0usize;
    for level in 0..levels {
        let shift = levels - 1 - level;
        let go_right = (line >> shift) & 1 == 1;
        // Bit must point to the *other* subtree (the pseudo-LRU side).
        bits[node] = !go_right;
        node = 2 * node + 1 + usize::from(go_right);
    }
}

/// Follows PLRU tree bits from the root to the pseudo-LRU victim line.
fn plru_victim(bits: &[bool], assoc: usize) -> usize {
    if assoc <= 1 {
        return 0;
    }
    let levels = assoc.trailing_zeros();
    let mut node = 0usize;
    let mut line = 0usize;
    for _ in 0..levels {
        let go_right = bits[node];
        line = 2 * line + usize::from(go_right);
        node = 2 * node + 1 + usize::from(go_right);
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<B: Clone + PartialEq>(
        policy: ReplacementPolicy,
        assoc: usize,
        seq: &[B],
    ) -> (Vec<bool>, SetState<B>) {
        let mut set = SetState::new(policy, assoc);
        let hits = seq.iter().map(|b| set.access(policy, b.clone())).collect();
        (hits, set)
    }

    #[test]
    fn lru_order_and_eviction() {
        let (hits, set) = run(ReplacementPolicy::Lru, 2, &['a', 'b', 'a', 'c', 'b']);
        assert_eq!(hits, vec![false, false, true, false, false]);
        // After the sequence: b is MRU, c is LRU.
        assert_eq!(set.lines()[0], Some('b'));
        assert_eq!(set.lines()[1], Some('c'));
    }

    #[test]
    fn fifo_hits_do_not_refresh() {
        // a, b, a, c: under FIFO the hit on `a` does not refresh it, so the
        // miss on `c` evicts `a` (first in).
        let (hits, set) = run(ReplacementPolicy::Fifo, 2, &['a', 'b', 'a', 'c']);
        assert_eq!(hits, vec![false, false, true, false]);
        assert!(set.classify(&'b'));
        assert!(set.classify(&'c'));
        assert!(!set.classify(&'a'));
        // Contrast with LRU, where `b` would have been evicted instead.
        let (_, lru) = run(ReplacementPolicy::Lru, 2, &['a', 'b', 'a', 'c']);
        assert!(lru.classify(&'a'));
        assert!(!lru.classify(&'b'));
    }

    #[test]
    fn plru_four_way_victim_chain() {
        let policy = ReplacementPolicy::Plru;
        let mut set = SetState::new(policy, 4);
        for b in ['a', 'b', 'c', 'd'] {
            assert!(!set.access(policy, b));
        }
        // Touch 'a' then miss: the victim must not be 'a'.
        assert!(set.access(policy, 'a'));
        assert!(!set.access(policy, 'e'));
        assert!(set.classify(&'a'));
        // PLRU differs from LRU: it tracks a tree, not a full order, so we
        // only check the data-independent invariants here.
        assert_eq!(set.occupancy(), 4);
    }

    #[test]
    fn plru_equals_lru_for_assoc_two() {
        // For associativity 2 the PLRU tree degenerates to true LRU.
        let seq: Vec<u32> = vec![1, 2, 1, 3, 2, 3, 1, 1, 2, 4, 3, 2];
        let (h_lru, _) = run(ReplacementPolicy::Lru, 2, &seq);
        let (h_plru, _) = run(ReplacementPolicy::Plru, 2, &seq);
        assert_eq!(h_lru, h_plru);
    }

    #[test]
    fn qlru_scan_resistance() {
        // A block that is re-referenced keeps age 0 and survives a scan of
        // distinct blocks that would evict it under LRU.
        let policy = ReplacementPolicy::Qlru;
        let mut set = SetState::new(policy, 4);
        set.access(policy, 0u64);
        set.access(policy, 0u64); // promote to age 0
        for b in 1..=4u64 {
            set.access(policy, b);
        }
        assert!(set.classify(&0), "re-referenced block survives the scan");
        let mut lru = SetState::new(ReplacementPolicy::Lru, 4);
        lru.access(ReplacementPolicy::Lru, 0u64);
        lru.access(ReplacementPolicy::Lru, 0u64);
        for b in 1..=4u64 {
            lru.access(ReplacementPolicy::Lru, b);
        }
        assert!(!lru.classify(&0), "LRU evicts it");
    }

    #[test]
    fn empty_lines_fill_before_eviction() {
        for policy in ReplacementPolicy::ALL {
            let mut set = SetState::new(policy, 4);
            for b in 0..4u64 {
                let (_, evicted) = match set.find(|x| *x == b) {
                    Some(idx) => {
                        set.on_hit(policy, idx);
                        (idx, None)
                    }
                    None => set.on_miss_insert(policy, b),
                };
                assert_eq!(
                    evicted, None,
                    "no eviction while lines are empty ({policy})"
                );
            }
            assert_eq!(set.occupancy(), 4);
        }
    }

    #[test]
    fn map_payloads_preserves_structure() {
        let (_, set) = run(ReplacementPolicy::Lru, 2, &[10u64, 20u64]);
        let mapped = set.map_payloads(|b| b + 1);
        assert_eq!(mapped.lines()[0], Some(21));
        assert_eq!(mapped.lines()[1], Some(11));
        assert_eq!(mapped.policy_state(), set.policy_state());
    }
}
