//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!`/`criterion_main!` macros —
//! backed by a simple timing loop: each benchmark runs `sample_size`
//! samples (or until `measurement_time` is exceeded) and the median sample
//! time is printed.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Clone, Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A named benchmark, optionally parameterised.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId {
            text: text.to_owned(),
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Upper bound on the per-benchmark measurement time.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Warm-up time hint (accepted for API compatibility; warm-up here is a
    /// single untimed run).
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher);
        bencher.report(&self.name, &id.text);
        self
    }

    /// Runs a benchmark against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.text);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs and times one benchmark body.
#[derive(Clone, Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            samples: Vec::new(),
        }
    }

    /// Times the routine over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up run.
        black_box(routine());
        let deadline = Instant::now() + self.measurement_time;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "  {group}/{id}: median {:.3} ms (min {:.3} ms, max {:.3} ms, {} samples)",
            median.as_secs_f64() * 1e3,
            min.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
            sorted.len()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
