//! Offline stand-in for `serde_json`: renders the `serde` shim's [`Value`]
//! data model as JSON text and parses JSON text back into it.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value as indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type (use `Value` to inspect
/// arbitrary documents).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize_value(&value).map_err(Error)
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                out.push_str(&format!("{v:?}"))
            } else {
                out.push_str("null")
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let value = Value::Object(vec![
            ("name".into(), Value::Str("jacobi-1d".into())),
            ("misses".into(), Value::UInt(1997)),
            ("share".into(), Value::Float(0.25)),
            (
                "levels".into(),
                Value::Array(vec![Value::Int(-1), Value::Null, Value::Bool(true)]),
            ),
        ]);
        let text = to_string_pretty(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
        let compact = to_string(&value).unwrap();
        assert!(!compact.contains('\n'));
        assert_eq!(from_str::<Value>(&compact).unwrap(), value);
    }

    #[test]
    fn escapes() {
        let value = Value::Str("a\"b\\c\nd".into());
        let text = to_string(&value).unwrap();
        assert_eq!(text, r#""a\"b\\c\nd""#);
        assert_eq!(from_str::<Value>(&text).unwrap(), value);
    }
}
