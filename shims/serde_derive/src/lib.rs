//! Offline stand-in for `serde_derive`.
//!
//! Provides `#[derive(Serialize)]` for the shapes this workspace uses:
//! structs with named fields, and enums whose variants are all unit-like.
//! The generated impl targets the simplified `serde` shim data model
//! (`fn serialize_value(&self) -> serde::Value`).
//!
//! Implemented without `syn`/`quote` (unavailable offline): the macro walks
//! the raw token stream, which is sufficient for these shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct with named fields or an enum with
/// unit variants.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (kind, name, body) = parse_item(&tokens);
    let impl_text = match kind {
        ItemKind::Struct => {
            let fields = named_fields(&body);
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::serialize_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        ItemKind::Enum => {
            let variants = unit_variants(&body);
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join(", ")
            )
        }
    };
    impl_text.parse().expect("generated impl parses")
}

enum ItemKind {
    Struct,
    Enum,
}

/// Extracts the item kind, type name and brace-delimited body tokens.
fn parse_item(tokens: &[TokenTree]) -> (ItemKind, String, Vec<TokenTree>) {
    let mut iter = tokens.iter().peekable();
    let mut kind = None;
    let mut name = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(ident) = tt {
            let text = ident.to_string();
            if text == "struct" || text == "enum" {
                kind = Some(if text == "struct" {
                    ItemKind::Struct
                } else {
                    ItemKind::Enum
                });
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let body = tokens
        .iter()
        .rev()
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Some(g.stream().into_iter().collect())
            }
            _ => None,
        })
        .expect("derive(Serialize) requires a braced struct or enum body");
    (
        kind.expect("derive(Serialize) input contains `struct` or `enum`"),
        name.expect("derive(Serialize) input names the type"),
        body,
    )
}

/// Splits a struct body into field names: for each top-level comma-separated
/// chunk, skips attributes and visibility and takes the ident before `:`.
fn named_fields(body: &[TokenTree]) -> Vec<String> {
    split_top_level(body)
        .into_iter()
        .filter_map(|chunk| {
            let mut iter = chunk.iter().peekable();
            while let Some(tt) = iter.peek() {
                match tt {
                    // Attribute: `#` followed by a bracket group.
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        iter.next();
                        iter.next();
                    }
                    TokenTree::Ident(ident) if ident.to_string() == "pub" => {
                        iter.next();
                        // Optional `(crate)` / `(super)` group after `pub`.
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    }
                    TokenTree::Ident(_) => {
                        return match iter.next() {
                            Some(TokenTree::Ident(ident)) => Some(ident.to_string()),
                            _ => None,
                        };
                    }
                    _ => return None,
                }
            }
            None
        })
        .collect()
}

/// Extracts unit-variant names from an enum body, rejecting data-carrying
/// variants (unsupported by this shim).
fn unit_variants(body: &[TokenTree]) -> Vec<String> {
    split_top_level(body)
        .into_iter()
        .filter_map(|chunk| {
            let mut name = None;
            for tt in &chunk {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '#' => {}
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {}
                    TokenTree::Ident(ident) => {
                        assert!(
                            name.is_none(),
                            "derive(Serialize) shim supports unit enum variants only"
                        );
                        name = Some(ident.to_string());
                    }
                    TokenTree::Group(_) => {
                        panic!("derive(Serialize) shim supports unit enum variants only")
                    }
                    _ => {}
                }
            }
            name
        })
        .collect()
}

/// Splits tokens on top-level commas.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !current.is_empty() {
                    chunks.push(std::mem::take(&mut current));
                }
            }
            other => current.push(other.clone()),
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}
