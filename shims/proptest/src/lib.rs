//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and boolean
//! strategies, `prop::sample::select`, `proptest::collection::vec`, [`Just`],
//! the [`proptest!`] macro and the `prop_assert*` macros.
//!
//! Differences from the real crate: generation is deterministic (seeded from
//! the test name), there is no shrinking of failing inputs, and failures
//! surface as ordinary `assert!` panics.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from a test name, so every test gets a distinct
    /// but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `[lo, hi]` (inclusive on both ends).
    pub fn in_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// A value in `[lo, hi]` (inclusive on both ends).
    pub fn in_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo + 1;
        lo + self.next_u64() % span
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $via:ident as $cast:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                rng.$via(self.start as $cast, (self.end - 1) as $cast) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$via(*self.start() as $cast, *self.end() as $cast) as $t
            }
        }
    )*};
}

impl_range_strategy!(
    i8 => in_range_i64 as i64,
    i16 => in_range_i64 as i64,
    i32 => in_range_i64 as i64,
    i64 => in_range_i64 as i64,
    isize => in_range_i64 as i64,
    u8 => in_range_u64 as u64,
    u16 => in_range_u64 as u64,
    u32 => in_range_u64 as u64,
    u64 => in_range_u64 as u64,
    usize => in_range_u64 as u64
);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);

/// Run configuration for [`proptest!`] blocks.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Namespaced strategies, mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// The strategy generating arbitrary booleans.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// Generates arbitrary booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniformly selects one of the given values.
        #[derive(Clone, Debug)]
        pub struct Select<T>(Vec<T>);

        /// A strategy choosing uniformly among `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let idx = (rng.next_u64() % self.0.len() as u64) as usize;
                self.0[idx].clone()
            }
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a vector-length specification.
    pub trait IntoLenRange {
        /// The inclusive bounds of the length range.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoLenRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoLenRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates vectors whose elements come from an inner strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A strategy for vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoLenRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range_u64(self.min as u64, self.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that generates inputs and runs the body repeatedly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}
