//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based `Serializer`/`Deserializer` pair, this
//! shim uses a simplified data model: [`Serialize`] converts a value into a
//! JSON-shaped [`Value`], and [`Deserialize`] reconstructs a value from one.
//! The `serde_json` shim renders and parses `Value`s.  The surface is kept
//! source-compatible with the idioms used in this workspace
//! (`#[derive(Serialize)]`, `T: serde::Serialize` bounds,
//! `serde_json::to_string_pretty`).

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// A JSON-shaped value: the data model of this serde stand-in.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate to render `u64::MAX` faithfully).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a float, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(v) => Some(v),
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`Value`], with a human-readable error.
    fn deserialize_value(value: &Value) -> Result<Self, String>;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, String> {
                let v = value
                    .as_u64()
                    .ok_or_else(|| format!("expected unsigned integer, got {value:?}"))?;
                <$t>::try_from(v).map_err(|_| format!("{v} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, String> {
                let v = value
                    .as_i64()
                    .ok_or_else(|| format!("expected integer, got {value:?}"))?;
                <$t>::try_from(v).map_err(|_| format!("{v} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        value
            .as_f64()
            .ok_or_else(|| format!("expected number, got {value:?}"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        value
            .as_bool()
            .ok_or_else(|| format!("expected boolean, got {value:?}"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| format!("expected string, got {value:?}"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        value
            .as_array()
            .ok_or_else(|| format!("expected array, got {value:?}"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, String> {
        Ok(value.clone())
    }
}
